#include "workloads/tpcc/bplus_tree.hh"

#include "sim/logging.hh"

namespace atomsim
{

namespace
{

// Node layout (512 B): isLeaf @0 (u32), count @4 (u32).
// Leaf: keys[28] @8, values[28] @232, next @456.
// Internal: keys[27] @8, children[28] @224.
constexpr Addr kIsLeafOff = 0;
constexpr Addr kCountOff = 4;
constexpr Addr kLeafKeysOff = 8;
constexpr Addr kLeafValsOff = 232;
constexpr Addr kLeafNextOff = 456;
constexpr Addr kIntKeysOff = 8;
constexpr Addr kIntChildrenOff = 224;

} // namespace

BPlusTree::BPlusTree(Addr anchor, PersistentHeap &heap,
                     std::uint32_t core)
    : _anchor(anchor), _heap(heap), _core(core)
{
}

bool
BPlusTree::isLeaf(Accessor &mem, Addr node)
{
    return mem.load32(node + kIsLeafOff) != 0;
}

std::uint32_t
BPlusTree::countOf(Accessor &mem, Addr node)
{
    return mem.load32(node + kCountOff);
}

void
BPlusTree::setCount(Accessor &mem, Addr node, std::uint32_t n)
{
    mem.store32(node + kCountOff, n);
}

Addr
BPlusTree::leafKeySlot(Addr node, std::uint32_t i)
{
    return node + kLeafKeysOff + Addr(i) * 8;
}

Addr
BPlusTree::leafValSlot(Addr node, std::uint32_t i)
{
    return node + kLeafValsOff + Addr(i) * 8;
}

Addr
BPlusTree::leafNextSlot(Addr node)
{
    return node + kLeafNextOff;
}

Addr
BPlusTree::intKeySlot(Addr node, std::uint32_t i)
{
    return node + kIntKeysOff + Addr(i) * 8;
}

Addr
BPlusTree::intChildSlot(Addr node, std::uint32_t i)
{
    return node + kIntChildrenOff + Addr(i) * 8;
}

Addr
BPlusTree::allocNode(Accessor &mem, bool leaf)
{
    const Addr node = _heap.alloc(_core, kNodeBytes, kLineBytes);
    mem.store32(node + kIsLeafOff, leaf ? 1 : 0);
    mem.store32(node + kCountOff, 0);
    if (leaf)
        mem.store64(leafNextSlot(node), 0);
    return node;
}

Addr
BPlusTree::create(Accessor &mem, PersistentHeap &heap,
                  std::uint32_t core)
{
    const Addr anchor = heap.alloc(core, 8, kLineBytes);
    BPlusTree tree(anchor, heap, core);
    const Addr root = tree.allocNode(mem, true);
    mem.store64(anchor, root);
    return anchor;
}

Addr
BPlusTree::descend(Accessor &mem, std::uint64_t key,
                   std::vector<std::pair<Addr, std::uint32_t>> *path)
{
    Addr node = rootOf(mem);
    while (!isLeaf(mem, node)) {
        const std::uint32_t n = countOf(mem, node);
        std::uint32_t i = 0;
        while (i < n && key >= mem.load64(intKeySlot(node, i))) {
            mem.compute(1);
            ++i;
        }
        if (path)
            path->emplace_back(node, i);
        node = mem.load64(intChildSlot(node, i));
    }
    return node;
}

std::optional<std::uint64_t>
BPlusTree::search(Accessor &mem, std::uint64_t key)
{
    const Addr leaf = descend(mem, key, nullptr);
    const std::uint32_t n = countOf(mem, leaf);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (mem.load64(leafKeySlot(leaf, i)) == key)
            return mem.load64(leafValSlot(leaf, i));
    }
    return std::nullopt;
}

void
BPlusTree::insertIntoParent(
    Accessor &mem, std::vector<std::pair<Addr, std::uint32_t>> &path,
    std::uint64_t sep_key, Addr right)
{
    if (path.empty()) {
        // Split the root: new root with one key, two children.
        const Addr old_root = rootOf(mem);
        const Addr new_root = allocNode(mem, false);
        mem.store64(intKeySlot(new_root, 0), sep_key);
        mem.store64(intChildSlot(new_root, 0), old_root);
        mem.store64(intChildSlot(new_root, 1), right);
        setCount(mem, new_root, 1);
        mem.store64(_anchor, new_root);
        return;
    }

    auto [node, at] = path.back();
    path.pop_back();
    const std::uint32_t n = countOf(mem, node);

    if (n < kIntKeys) {
        // Shift keys/children right of the insertion point.
        for (std::uint32_t i = n; i > at; --i) {
            mem.store64(intKeySlot(node, i),
                        mem.load64(intKeySlot(node, i - 1)));
            mem.store64(intChildSlot(node, i + 1),
                        mem.load64(intChildSlot(node, i)));
        }
        mem.store64(intKeySlot(node, at), sep_key);
        mem.store64(intChildSlot(node, at + 1), right);
        setCount(mem, node, n + 1);
        return;
    }

    // Split the internal node. Materialize the post-insert sequence,
    // then divide it around the median.
    std::vector<std::uint64_t> keys;
    std::vector<Addr> children;
    keys.reserve(n + 1);
    children.reserve(n + 2);
    children.push_back(mem.load64(intChildSlot(node, 0)));
    for (std::uint32_t i = 0; i < n; ++i) {
        keys.push_back(mem.load64(intKeySlot(node, i)));
        children.push_back(mem.load64(intChildSlot(node, i + 1)));
    }
    keys.insert(keys.begin() + at, sep_key);
    children.insert(children.begin() + at + 1, right);

    const std::uint32_t mid = std::uint32_t(keys.size()) / 2;
    const std::uint64_t up_key = keys[mid];

    const Addr sibling = allocNode(mem, false);
    // Left node keeps keys [0, mid); right sibling gets (mid, end).
    setCount(mem, node, mid);
    for (std::uint32_t i = 0; i < mid; ++i) {
        mem.store64(intKeySlot(node, i), keys[i]);
        mem.store64(intChildSlot(node, i), children[i]);
    }
    mem.store64(intChildSlot(node, mid), children[mid]);

    const std::uint32_t rcount =
        std::uint32_t(keys.size()) - mid - 1;
    setCount(mem, sibling, rcount);
    for (std::uint32_t i = 0; i < rcount; ++i) {
        mem.store64(intKeySlot(sibling, i), keys[mid + 1 + i]);
        mem.store64(intChildSlot(sibling, i), children[mid + 1 + i]);
    }
    mem.store64(intChildSlot(sibling, rcount), children[keys.size()]);

    insertIntoParent(mem, path, up_key, sibling);
}

void
BPlusTree::insert(Accessor &mem, std::uint64_t key, std::uint64_t value)
{
    std::vector<std::pair<Addr, std::uint32_t>> path;
    const Addr leaf = descend(mem, key, &path);
    const std::uint32_t n = countOf(mem, leaf);

    // Overwrite on duplicate key.
    std::uint32_t at = 0;
    while (at < n && mem.load64(leafKeySlot(leaf, at)) < key)
        ++at;
    if (at < n && mem.load64(leafKeySlot(leaf, at)) == key) {
        mem.store64(leafValSlot(leaf, at), value);
        return;
    }

    if (n < kLeafKeys) {
        for (std::uint32_t i = n; i > at; --i) {
            mem.store64(leafKeySlot(leaf, i),
                        mem.load64(leafKeySlot(leaf, i - 1)));
            mem.store64(leafValSlot(leaf, i),
                        mem.load64(leafValSlot(leaf, i - 1)));
        }
        mem.store64(leafKeySlot(leaf, at), key);
        mem.store64(leafValSlot(leaf, at), value);
        setCount(mem, leaf, n + 1);
        return;
    }

    // Split the leaf around the median of the post-insert sequence.
    std::vector<std::uint64_t> keys(n + 1);
    std::vector<std::uint64_t> vals(n + 1);
    for (std::uint32_t i = 0, j = 0; i <= n; ++i) {
        if (i == at) {
            keys[i] = key;
            vals[i] = value;
        } else {
            keys[i] = mem.load64(leafKeySlot(leaf, j));
            vals[i] = mem.load64(leafValSlot(leaf, j));
            ++j;
        }
    }

    const std::uint32_t mid = std::uint32_t(keys.size()) / 2;
    const Addr sibling = allocNode(mem, true);

    setCount(mem, leaf, mid);
    for (std::uint32_t i = 0; i < mid; ++i) {
        mem.store64(leafKeySlot(leaf, i), keys[i]);
        mem.store64(leafValSlot(leaf, i), vals[i]);
    }
    const std::uint32_t rcount = std::uint32_t(keys.size()) - mid;
    setCount(mem, sibling, rcount);
    for (std::uint32_t i = 0; i < rcount; ++i) {
        mem.store64(leafKeySlot(sibling, i), keys[mid + i]);
        mem.store64(leafValSlot(sibling, i), vals[mid + i]);
    }
    mem.store64(leafNextSlot(sibling),
                mem.load64(leafNextSlot(leaf)));
    mem.store64(leafNextSlot(leaf), sibling);

    insertIntoParent(mem, path, keys[mid], sibling);
}

bool
BPlusTree::remove(Accessor &mem, std::uint64_t key)
{
    const Addr leaf = descend(mem, key, nullptr);
    const std::uint32_t n = countOf(mem, leaf);
    for (std::uint32_t i = 0; i < n; ++i) {
        if (mem.load64(leafKeySlot(leaf, i)) == key) {
            for (std::uint32_t j = i; j + 1 < n; ++j) {
                mem.store64(leafKeySlot(leaf, j),
                            mem.load64(leafKeySlot(leaf, j + 1)));
                mem.store64(leafValSlot(leaf, j),
                            mem.load64(leafValSlot(leaf, j + 1)));
            }
            setCount(mem, leaf, n - 1);
            return true;
        }
    }
    return false;
}

std::uint64_t
BPlusTree::count(Accessor &mem)
{
    // Leftmost leaf, then follow the chain.
    Addr node = rootOf(mem);
    while (!isLeaf(mem, node))
        node = mem.load64(intChildSlot(node, 0));
    std::uint64_t total = 0;
    while (node != 0) {
        total += countOf(mem, node);
        node = mem.load64(leafNextSlot(node));
    }
    return total;
}

std::string
BPlusTree::checkSubtree(Accessor &mem, Addr node, std::uint64_t lo,
                        std::uint64_t hi, std::uint32_t depth,
                        std::uint32_t &leaf_depth)
{
    const std::uint32_t n = countOf(mem, node);
    if (isLeaf(mem, node)) {
        if (leaf_depth == ~0u)
            leaf_depth = depth;
        else if (leaf_depth != depth) {
            return faultf("leaves at different depths: node=0x%llx "
                          "depth=%u expected=%u",
                          (unsigned long long)node, depth, leaf_depth);
        }
        std::uint64_t prev = lo;
        bool first = true;
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint64_t k = mem.load64(leafKeySlot(node, i));
            if (k < lo || k >= hi) {
                return faultf("leaf key out of separator range: "
                              "node=0x%llx slot=%u key=0x%llx "
                              "range=[0x%llx,0x%llx)",
                              (unsigned long long)node, i,
                              (unsigned long long)k,
                              (unsigned long long)lo,
                              (unsigned long long)hi);
            }
            if (!first && k <= prev) {
                return faultf("leaf keys not strictly increasing: "
                              "node=0x%llx slot=%u key=0x%llx "
                              "prev=0x%llx",
                              (unsigned long long)node, i,
                              (unsigned long long)k,
                              (unsigned long long)prev);
            }
            prev = k;
            first = false;
        }
        return "";
    }
    if (n == 0 || n > kIntKeys) {
        return faultf("internal node count out of range: node=0x%llx "
                      "count=%u", (unsigned long long)node, n);
    }
    std::uint64_t prev = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t k = mem.load64(intKeySlot(node, i));
        if (k < lo || k > hi) {
            return faultf("separator out of range: node=0x%llx slot=%u "
                          "key=0x%llx range=[0x%llx,0x%llx]",
                          (unsigned long long)node, i,
                          (unsigned long long)k, (unsigned long long)lo,
                          (unsigned long long)hi);
        }
        if (i > 0 && k <= prev) {
            return faultf("separators not strictly increasing: "
                          "node=0x%llx slot=%u key=0x%llx prev=0x%llx",
                          (unsigned long long)node, i,
                          (unsigned long long)k,
                          (unsigned long long)prev);
        }
        prev = k;
    }
    for (std::uint32_t i = 0; i <= n; ++i) {
        const std::uint64_t child_lo =
            (i == 0) ? lo : mem.load64(intKeySlot(node, i - 1));
        const std::uint64_t child_hi =
            (i == n) ? hi : mem.load64(intKeySlot(node, i));
        const Addr child = mem.load64(intChildSlot(node, i));
        if (child == 0) {
            return faultf("null child pointer: node=0x%llx slot=%u",
                          (unsigned long long)node, i);
        }
        const std::string err = checkSubtree(mem, child, child_lo,
                                             child_hi, depth + 1,
                                             leaf_depth);
        if (!err.empty())
            return err;
    }
    return "";
}

std::string
BPlusTree::checkStructure(Accessor &mem)
{
    std::uint32_t leaf_depth = ~0u;
    std::string err = checkSubtree(mem, rootOf(mem), 0,
                                   ~std::uint64_t(0), 0, leaf_depth);
    if (!err.empty())
        return err;

    // Leaf chain must be globally sorted.
    Addr node = rootOf(mem);
    while (!isLeaf(mem, node))
        node = mem.load64(intChildSlot(node, 0));
    std::uint64_t prev = 0;
    bool first = true;
    while (node != 0) {
        const std::uint32_t n = countOf(mem, node);
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint64_t k = mem.load64(leafKeySlot(node, i));
            if (!first && k <= prev) {
                return faultf("leaf chain not sorted: node=0x%llx "
                              "slot=%u key=0x%llx prev=0x%llx",
                              (unsigned long long)node, i,
                              (unsigned long long)k,
                              (unsigned long long)prev);
            }
            prev = k;
            first = false;
        }
        node = mem.load64(leafNextSlot(node));
    }
    return "";
}

} // namespace atomsim
