/**
 * @file
 * TPC-C schema on B+-trees (Section V of the paper: scale factor 1,
 * 32 terminals issuing new-order transactions, no think time).
 *
 * Tables are persistent B+-trees keyed by the standard composite keys;
 * rows are fixed-layout structs stored in heap blocks. Row sizes are
 * condensed from the TPC-C row definitions (free-text fields sized
 * down) -- what matters for the logging study is the number and spread
 * of lines written per transaction.
 */

#ifndef ATOMSIM_WORKLOADS_TPCC_SCHEMA_HH
#define ATOMSIM_WORKLOADS_TPCC_SCHEMA_HH

#include <cstdint>
#include <memory>

#include "workloads/heap.hh"
#include "workloads/tpcc/bplus_tree.hh"
#include "workloads/workload.hh"

namespace atomsim
{
namespace tpcc
{

/** Scale parameters (SF=1, sized for simulation). */
struct ScaleParams
{
    std::uint32_t warehouses = 1;
    std::uint32_t districtsPerWh = 10;
    std::uint32_t customersPerDistrict = 64;
    std::uint32_t items = 1024;
};

// Row byte sizes (condensed TPC-C layouts; multiples of 8).
constexpr std::uint32_t kWarehouseRow = 96;
constexpr std::uint32_t kDistrictRow = 112;
constexpr std::uint32_t kCustomerRow = 576;
constexpr std::uint32_t kItemRow = 96;
constexpr std::uint32_t kStockRow = 320;
constexpr std::uint32_t kOrderRow = 64;
constexpr std::uint32_t kNewOrderRow = 32;
constexpr std::uint32_t kOrderLineRow = 64;

// Field offsets used by the new-order transaction.
constexpr Addr kWTaxOff = 0;        // warehouse: w_tax (u64 fixed-point)
constexpr Addr kWYtdOff = 8;        // warehouse: w_ytd
constexpr Addr kDTaxOff = 0;        // district: d_tax
constexpr Addr kDNextOidOff = 8;    // district: d_next_o_id
constexpr Addr kCDiscountOff = 0;   // customer: c_discount
constexpr Addr kCBalanceOff = 8;    // customer: c_balance
constexpr Addr kIPriceOff = 0;      // item: i_price
constexpr Addr kSQuantityOff = 0;   // stock: s_quantity
constexpr Addr kSYtdOff = 8;        // stock: s_ytd
constexpr Addr kSOrderCntOff = 16;  // stock: s_order_cnt
constexpr Addr kSRemoteCntOff = 24; // stock: s_remote_cnt

/** Composite key helpers (fit in 64 bits). */
std::uint64_t districtKey(std::uint32_t w, std::uint32_t d);
std::uint64_t customerKey(std::uint32_t w, std::uint32_t d,
                          std::uint32_t c);
std::uint64_t stockKey(std::uint32_t w, std::uint32_t i);
std::uint64_t orderKey(std::uint32_t w, std::uint32_t d,
                       std::uint32_t o);
std::uint64_t orderLineKey(std::uint32_t w, std::uint32_t d,
                           std::uint32_t o, std::uint32_t line);

/** The database: one B+-tree per table plus row storage. */
class Database
{
  public:
    Database(const ScaleParams &scale, PersistentHeap &heap);

    /** Populate all tables (functional). Rows allocate from core 0's
     * arena groups spread by table for cross-MC distribution. */
    void populate(Accessor &mem, std::uint32_t num_cores);

    const ScaleParams &scale() const { return _scale; }

    BPlusTree &warehouse() { return *_warehouse; }
    BPlusTree &district() { return *_district; }
    BPlusTree &customer() { return *_customer; }
    BPlusTree &item() { return *_item; }
    BPlusTree &stock() { return *_stock; }
    BPlusTree &orders() { return *_orders; }
    BPlusTree &newOrders() { return *_newOrders; }
    BPlusTree &orderLines() { return *_orderLines; }

    PersistentHeap &heap() { return _heap; }

    /** Structural check of every table tree. */
    std::string checkStructure(Accessor &mem);

  private:
    ScaleParams _scale;
    PersistentHeap &_heap;
    std::unique_ptr<BPlusTree> _warehouse;
    std::unique_ptr<BPlusTree> _district;
    std::unique_ptr<BPlusTree> _customer;
    std::unique_ptr<BPlusTree> _item;
    std::unique_ptr<BPlusTree> _stock;
    std::unique_ptr<BPlusTree> _orders;
    std::unique_ptr<BPlusTree> _newOrders;
    std::unique_ptr<BPlusTree> _orderLines;
};

} // namespace tpcc
} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_TPCC_SCHEMA_HH
