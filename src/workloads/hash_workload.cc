#include "workloads/hash_workload.hh"

#include <vector>

#include "sim/logging.hh"

namespace atomsim
{

namespace
{

/** Node field offsets: key @0, next @8, payload @64 (line-aligned). */
constexpr Addr kKeyOff = 0;
constexpr Addr kNextOff = 8;
constexpr Addr kPayloadOff = kLineBytes;

std::uint64_t
bucketOf(std::uint64_t key)
{
    // Cheap mix; the 10-cycle compute() models the real hash cost.
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdULL;
    key ^= key >> 33;
    return key % HashWorkload::kBuckets;
}

void
fillPayload(Accessor &mem, Addr payload, std::uint32_t bytes,
            std::uint64_t key)
{
    std::vector<std::uint64_t> words(bytes / 8);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] = key * 0x9e3779b97f4a7c15ULL + i;
    mem.storeBytes(payload, bytes, words.data());
}

} // namespace

HashWorkload::HashWorkload(const MicroParams &params) : _params(params) {}

Addr
HashWorkload::nodeBytes() const
{
    return kPayloadOff + _params.entryBytes;
}

void
HashWorkload::init(DirectAccessor &mem, PersistentHeap &heap,
                   std::uint32_t num_cores)
{
    _heap = &heap;
    _state.assign(num_cores, PerCore{});
    Random rng(_params.seed);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        PerCore &pc = _state[c];
        pc.buckets = heap.alloc(c, kBuckets * 8, kLineBytes);
        for (std::uint32_t b = 0; b < kBuckets; ++b)
            mem.store64(pc.buckets + b * 8, 0);
        pc.nextKey = std::uint64_t(c) << 32;
        for (std::uint32_t i = 0; i < _params.initialItems; ++i)
            insert(c, mem, pc.nextKey++);
    }
    (void)rng;
}

void
HashWorkload::insert(CoreId core, Accessor &mem, std::uint64_t key)
{
    PerCore &pc = _state[core];
    const Addr head_slot = pc.buckets + bucketOf(key) * 8;
    mem.compute(10);  // hash computation
    const Addr head = mem.load64(head_slot);

    const Addr node = _heap->alloc(core, nodeBytes());
    mem.atomicBegin();
    mem.store64(node + kKeyOff, key);
    mem.store64(node + kNextOff, head);
    fillPayload(mem, node + kPayloadOff, _params.entryBytes, key);
    mem.store64(head_slot, node);
    mem.atomicEnd();
}

bool
HashWorkload::remove(CoreId core, Accessor &mem, std::uint64_t key)
{
    PerCore &pc = _state[core];
    const Addr head_slot = pc.buckets + bucketOf(key) * 8;
    mem.compute(10);

    Addr prev_slot = head_slot;
    Addr node = mem.load64(head_slot);
    while (node != 0) {
        if (mem.load64(node + kKeyOff) == key) {
            const Addr next = mem.load64(node + kNextOff);
            mem.atomicBegin();
            mem.store64(prev_slot, next);
            // Poison the unlinked node's key so a torn unlink is
            // detectable (and the payload is dead).
            mem.store64(node + kKeyOff, ~std::uint64_t(0));
            mem.atomicEnd();
            _heap->free(core, node, nodeBytes());
            return true;
        }
        prev_slot = node + kNextOff;
        node = mem.load64(node + kNextOff);
    }
    return false;
}

bool
HashWorkload::lookup(CoreId core, Accessor &mem, std::uint64_t key)
{
    PerCore &pc = _state[core];
    mem.compute(10);
    Addr node = mem.load64(pc.buckets + bucketOf(key) * 8);
    while (node != 0) {
        if (mem.load64(node + kKeyOff) == key)
            return true;
        node = mem.load64(node + kNextOff);
    }
    return false;
}

void
HashWorkload::runTransaction(CoreId core, Accessor &mem, Random &rng)
{
    PerCore &pc = _state[core];
    // A search precedes each mutation (Table II: search + atomic
    // insert/delete mix).
    const std::uint64_t base = std::uint64_t(core) << 32;
    lookup(core, mem, base + rng.below(pc.nextKey - base + 1));

    if (rng.chance(0.5)) {
        insert(core, mem, pc.nextKey++);
    } else {
        // Delete a random previously-inserted key (may already be
        // gone; then fall back to an insert so work is comparable).
        const std::uint64_t key = base + rng.below(pc.nextKey - base);
        if (!remove(core, mem, key))
            insert(core, mem, pc.nextKey++);
    }
}

std::string
HashWorkload::checkConsistency(DirectAccessor &mem,
                               std::uint32_t num_cores)
{
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        const PerCore &pc = _state[c];
        if (pc.buckets == 0)
            continue;
        for (std::uint32_t b = 0; b < kBuckets; ++b) {
            Addr node = mem.load64(pc.buckets + b * 8);
            std::uint32_t steps = 0;
            while (node != 0) {
                const std::uint64_t key = mem.load64(node + kKeyOff);
                if (key == ~std::uint64_t(0)) {
                    return faultf("dangling pointer to an unlinked node:"
                                  " core=%u bucket=%u node=0x%llx",
                                  c, b, (unsigned long long)node);
                }
                if (bucketOf(key) != b) {
                    return faultf(
                        "key in the wrong bucket (torn insert?): core=%u "
                        "bucket=%u node=0x%llx key=0x%llx belongs_in=%llu",
                        c, b, (unsigned long long)node,
                        (unsigned long long)key,
                        (unsigned long long)bucketOf(key));
                }
                if ((key >> 32) != c) {
                    return faultf("key from another core's table: core=%u "
                                  "bucket=%u node=0x%llx key=0x%llx",
                                  c, b, (unsigned long long)node,
                                  (unsigned long long)key);
                }
                // Payload pattern must match the key entirely.
                std::vector<std::uint64_t> words(_params.entryBytes / 8);
                mem.loadBytes(node + kPayloadOff, _params.entryBytes,
                              words.data());
                for (std::size_t i = 0; i < words.size(); ++i) {
                    if (words[i] != key * 0x9e3779b97f4a7c15ULL + i) {
                        return faultf(
                            "torn payload: core=%u bucket=%u node=0x%llx "
                            "key=0x%llx word=%zu addr=0x%llx "
                            "expected=0x%llx found=0x%llx",
                            c, b, (unsigned long long)node,
                            (unsigned long long)key, i,
                            (unsigned long long)(node + kPayloadOff +
                                                 i * 8),
                            (unsigned long long)(
                                key * 0x9e3779b97f4a7c15ULL + i),
                            (unsigned long long)words[i]);
                    }
                }
                node = mem.load64(node + kNextOff);
                if (++steps > 1u << 20) {
                    return faultf("cycle in a bucket chain: core=%u "
                                  "bucket=%u", c, b);
                }
            }
        }
    }
    return "";
}

} // namespace atomsim
