#include "workloads/heap.hh"

#include "sim/logging.hh"

namespace atomsim
{

PersistentHeap::PersistentHeap(Addr base, Addr limit, std::uint32_t cores)
    : _next(base), _limit(limit), _arenas(cores)
{
    fatal_if(base >= limit, "empty heap region");
}

void
PersistentHeap::refill(std::uint32_t core, std::size_t min_bytes)
{
    // Chunks grow to fit oversized allocations (whole pages).
    Addr chunk = kArenaChunk;
    const Addr need =
        (Addr(min_bytes) + kPageBytes - 1) / kPageBytes * kPageBytes;
    if (need > chunk)
        chunk = need;
    fatal_if(_next + chunk > _limit,
             "persistent heap exhausted (data region too small)");
    Arena &arena = _arenas[core];
    arena.cursor = _next;
    arena.end = _next + chunk;
    _next += chunk;
}

Addr
PersistentHeap::alloc(std::uint32_t core, std::size_t bytes,
                      std::size_t align)
{
    panic_if(core >= _arenas.size(), "bad core %u", core);
    panic_if(bytes == 0, "zero-byte allocation");
    if (bytes >= kLineBytes && align < kLineBytes)
        align = kLineBytes;

    Arena &arena = _arenas[core];

    // Size-class reuse first.
    auto it = arena.freeLists.find(bytes);
    if (it != arena.freeLists.end() && !it->second.empty()) {
        const Addr addr = it->second.back();
        it->second.pop_back();
        return addr;
    }

    for (;;) {
        const Addr aligned = (arena.cursor + align - 1) & ~(align - 1);
        if (aligned + bytes <= arena.end && arena.end != 0) {
            arena.cursor = aligned + bytes;
            _bytesUsed += bytes;
            if (arena.cursor > _highWater)
                _highWater = arena.cursor;
            return aligned;
        }
        refill(core, bytes + align);
    }
}

void
PersistentHeap::free(std::uint32_t core, Addr addr, std::size_t bytes)
{
    panic_if(core >= _arenas.size(), "bad core %u", core);
    _arenas[core].freeLists[bytes].push_back(addr);
}

} // namespace atomsim
