/**
 * @file
 * KV serving workload: YCSB-style zipfian point operations over
 * per-tenant slot tables.
 *
 * Models a multi-tenant key-value serving tier on persistent memory:
 * each tenant owns a contiguous block of cores (SystemConfig::tenantOf)
 * and an independent slot table in a disjoint address range; cores
 * issue a read / update / insert mix whose key popularity follows a
 * zipfian distribution (the YCSB default, theta = 0.99). Updates and
 * inserts are atomic durable regions; reads are log-free. Transactions
 * are tagged with (tenant, class) so the Runner's latency histograms
 * split p50/p95/p99 per tenant and per transaction class.
 */

#ifndef ATOMSIM_WORKLOADS_KV_WORKLOAD_HH
#define ATOMSIM_WORKLOADS_KV_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "workloads/heap.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/**
 * Zipfian rank generator (Gray et al.'s rejection-free method, as used
 * by YCSB): next() draws a rank in [0, n) where rank 0 is the hottest
 * key and P(rank) ~ 1 / (rank+1)^theta. The zeta(n, theta) prefix sum
 * is computed once at construction (O(n)); draws are O(1). theta = 0
 * degenerates to uniform.
 */
class ZipfianGenerator
{
  public:
    ZipfianGenerator(std::uint64_t n, double theta);

    /** Next rank in [0, n); rank 0 is the hottest. */
    std::uint64_t next(Random &rng) const;

    std::uint64_t n() const { return _n; }
    double theta() const { return _theta; }

  private:
    std::uint64_t _n;
    double _theta;
    double _alpha = 0;
    double _zetan = 0;
    double _eta = 0;
};

/** Mix/shape parameters of the KV serving workload. */
struct KvParams
{
    /** Value bytes per key (multiple of 8). */
    std::uint32_t valueBytes = 128;
    /** Keys preloaded per tenant; the zipfian draws over these. */
    std::uint32_t keysPerTenant = 1024;
    /** Insert capacity preallocated per core; once a core exhausts
     * its budget further insert draws fall back to updates. */
    std::uint32_t insertsPerCore = 16;
    /** Transactions each core executes (consumed by the harness). */
    std::uint32_t txnsPerCore = 40;
    /** Zipfian skew (YCSB default 0.99); 0 = uniform. */
    double theta = 0.99;
    /** Operation mix; insert fraction is the remainder. */
    double readFraction = 0.5;
    double updateFraction = 0.4;
    /**
     * Tenant count; MUST equal SystemConfig::numTenants of the machine
     * the workload runs on (the core->tenant map is shared). 0 = one
     * tenant owning every core.
     */
    std::uint32_t numTenants = 0;
    std::uint64_t seed = 42;
};

/**
 * Per tenant: a flat slot table; slot s holds key s as
 * {keyTag = key+1 @0, version @8, value @64}. The value of (tenant,
 * key, version) is a fixed word pattern, and version bumps atomically
 * with the value rewrite, so any torn update or insert is detectable
 * by checkConsistency. Tenant tables live in disjoint address ranges
 * by construction (per-core heap arenas).
 */
class KvWorkload : public Workload
{
  public:
    /** Transaction classes as tagged on each txn (latency keys). */
    static constexpr std::uint16_t kClassRead = 0;
    static constexpr std::uint16_t kClassUpdate = 1;
    static constexpr std::uint16_t kClassInsert = 2;
    static constexpr std::uint32_t kNumClasses = 3;

    /** Class name for reports ("read" / "update" / "insert"). */
    static const char *className(std::uint16_t cls);

    explicit KvWorkload(const KvParams &params);

    std::string name() const override { return "kv"; }
    void init(DirectAccessor &mem, PersistentHeap &heap,
              std::uint32_t num_cores) override;
    void runTransaction(CoreId core, Accessor &mem, Random &rng) override;
    std::string checkConsistency(DirectAccessor &mem,
                                 std::uint32_t num_cores) override;

  private:
    struct Tenant
    {
        Addr table = 0;            //!< slot array base
        std::uint32_t firstCore = 0;
        std::uint32_t numCores = 0;
        std::uint32_t slots = 0;   //!< keysPerTenant + insert capacity
    };

    struct PerCore
    {
        std::uint32_t inserted = 0;  //!< inserts executed so far
    };

    std::uint32_t tenantCount() const;
    std::uint32_t tenantOfCore(CoreId core) const;
    Addr slotAddr(const Tenant &t, std::uint64_t key) const;
    std::uint32_t slotBytes() const;

    void writeValue(Accessor &mem, Addr value_addr, std::uint32_t tenant,
                    std::uint64_t key, std::uint64_t version);
    void doRead(const Tenant &t, Accessor &mem, std::uint64_t key);
    void doUpdate(const Tenant &t, std::uint32_t tenant, Accessor &mem,
                  std::uint64_t key);
    void doInsert(const Tenant &t, std::uint32_t tenant, CoreId core,
                  Accessor &mem);

    KvParams _params;
    std::uint32_t _numCores = 0;
    std::vector<Tenant> _tenants;
    std::vector<PerCore> _state;
    std::vector<ZipfianGenerator> _zipf;  //!< one element, shared n
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_KV_WORKLOAD_HH
