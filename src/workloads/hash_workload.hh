/**
 * @file
 * Hash micro-benchmark: atomic insert/delete of entries in per-core
 * open-chaining hash tables (Table II of the paper).
 */

#ifndef ATOMSIM_WORKLOADS_HASH_WORKLOAD_HH
#define ATOMSIM_WORKLOADS_HASH_WORKLOAD_HH

#include <vector>

#include "workloads/heap.hh"
#include "workloads/workload.hh"

namespace atomsim
{

/**
 * Per core: a bucket array of node pointers; nodes hold
 * {key, next, payload[entryBytes]}. A transaction is a lookup followed
 * by an atomic insert or an atomic delete (50/50).
 */
class HashWorkload : public Workload
{
  public:
    explicit HashWorkload(const MicroParams &params);

    std::string name() const override { return "hash"; }
    void init(DirectAccessor &mem, PersistentHeap &heap,
              std::uint32_t num_cores) override;
    void runTransaction(CoreId core, Accessor &mem, Random &rng) override;
    std::string checkConsistency(DirectAccessor &mem,
                                 std::uint32_t num_cores) override;

    static constexpr std::uint32_t kBuckets = 64;

  private:
    struct PerCore
    {
        Addr buckets = 0;   //!< array of kBuckets node pointers
        std::uint64_t nextKey = 0;
    };

    Addr nodeBytes() const;
    void insert(CoreId core, Accessor &mem, std::uint64_t key);
    bool remove(CoreId core, Accessor &mem, std::uint64_t key);
    bool lookup(CoreId core, Accessor &mem, std::uint64_t key);

    MicroParams _params;
    PersistentHeap *_heap = nullptr;
    std::vector<PerCore> _state;
};

} // namespace atomsim

#endif // ATOMSIM_WORKLOADS_HASH_WORKLOAD_HH
