#include "workloads/sps_workload.hh"

#include <vector>

namespace atomsim
{

namespace
{

std::uint64_t
payloadWord(std::uint64_t tag, std::size_t i)
{
    return tag * 0xd6e8feb86659fd93ULL + i;
}

} // namespace

SpsWorkload::SpsWorkload(const MicroParams &params) : _params(params) {}

void
SpsWorkload::init(DirectAccessor &mem, PersistentHeap &heap,
                  std::uint32_t num_cores)
{
    _state.assign(num_cores, PerCore{});
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        PerCore &pc = _state[c];
        pc.entries = _params.initialItems;
        pc.array = heap.alloc(c, Addr(pc.entries) * _params.entryBytes,
                              kLineBytes);
        for (std::uint32_t e = 0; e < pc.entries; ++e) {
            std::vector<std::uint64_t> words(_params.entryBytes / 8);
            // Word 0 is the permutation tag.
            words[0] = e;
            for (std::size_t i = 1; i < words.size(); ++i)
                words[i] = payloadWord(e, i);
            mem.storeBytes(pc.array + Addr(e) * _params.entryBytes,
                           _params.entryBytes, words.data());
        }
    }
}

void
SpsWorkload::runTransaction(CoreId core, Accessor &mem, Random &rng)
{
    PerCore &pc = _state[core];
    const std::uint32_t a = std::uint32_t(rng.below(pc.entries));
    std::uint32_t b = std::uint32_t(rng.below(pc.entries));
    if (b == a)
        b = (b + 1) % pc.entries;

    const Addr ea = pc.array + Addr(a) * _params.entryBytes;
    const Addr eb = pc.array + Addr(b) * _params.entryBytes;

    std::vector<std::uint8_t> va(_params.entryBytes);
    std::vector<std::uint8_t> vb(_params.entryBytes);
    mem.loadBytes(ea, _params.entryBytes, va.data());
    mem.loadBytes(eb, _params.entryBytes, vb.data());

    mem.atomicBegin();
    mem.storeBytes(ea, _params.entryBytes, vb.data());
    mem.storeBytes(eb, _params.entryBytes, va.data());
    mem.atomicEnd();
}

std::string
SpsWorkload::checkConsistency(DirectAccessor &mem,
                              std::uint32_t num_cores)
{
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        const PerCore &pc = _state[c];
        if (pc.array == 0)
            continue;
        std::vector<bool> seen(pc.entries, false);
        for (std::uint32_t e = 0; e < pc.entries; ++e) {
            std::vector<std::uint64_t> words(_params.entryBytes / 8);
            mem.loadBytes(pc.array + Addr(e) * _params.entryBytes,
                          _params.entryBytes, words.data());
            const Addr entry = pc.array + Addr(e) * _params.entryBytes;
            const std::uint64_t tag = words[0];
            if (tag >= pc.entries) {
                return faultf("entry tag out of range (torn swap):"
                              " core=%u entry=%u addr=0x%llx tag=0x%llx"
                              " entries=%u",
                              c, e, (unsigned long long)entry,
                              (unsigned long long)tag, pc.entries);
            }
            if (seen[std::size_t(tag)]) {
                return faultf("duplicate entry tag (half-applied swap):"
                              " core=%u entry=%u addr=0x%llx tag=0x%llx",
                              c, e, (unsigned long long)entry,
                              (unsigned long long)tag);
            }
            seen[std::size_t(tag)] = true;
            for (std::size_t i = 1; i < words.size(); ++i) {
                if (words[i] != payloadWord(tag, i)) {
                    return faultf(
                        "entry payload does not match its tag: core=%u "
                        "entry=%u tag=0x%llx word=%zu addr=0x%llx "
                        "expected=0x%llx found=0x%llx",
                        c, e, (unsigned long long)tag, i,
                        (unsigned long long)(entry + i * 8),
                        (unsigned long long)payloadWord(tag, i),
                        (unsigned long long)words[i]);
                }
            }
        }
    }
    return "";
}

} // namespace atomsim
