#include "os/log_space.hh"

namespace atomsim
{

LogSpace::LogSpace(std::vector<EventQueue *> queues,
                   const SystemConfig &cfg, StatSet &stats)
    : _queues(std::move(queues)),
      _latency(cfg.osOverflowLatency),
      _grantSize(std::max<std::uint32_t>(1, cfg.bucketsPerMc / 16)),
      _busy(cfg.numMemCtrls, false),
      _pending(cfg.numMemCtrls),
      _statInterrupts(stats.counter("os", "log_overflow_interrupts"))
{
    _grantEvents.reserve(cfg.numMemCtrls);
    for (McId mc = 0; mc < cfg.numMemCtrls; ++mc) {
        _grantEvents.push_back(std::make_unique<TickEvent>(
            [this, mc] { grant(mc); }, "os.grant"));
    }
}

void
LogSpace::requestMoreBuckets(McId mc,
                             std::function<void(std::uint32_t)> granted)
{
    _pending[mc].push_back(std::move(granted));
    if (_busy[mc])
        return;
    _busy[mc] = 1;
    _statInterrupts.inc();
    _queues[mc]->scheduleIn(*_grantEvents[mc], _latency);
}

void
LogSpace::grant(McId mc)
{
    _busy[mc] = 0;
    auto waiters = std::move(_pending[mc]);
    _pending[mc].clear();
    for (auto &w : waiters)
        w(_grantSize);
}

} // namespace atomsim
