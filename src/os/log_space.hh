/**
 * @file
 * OS log-space service (Section IV-E).
 *
 * The OS statically reserves log pages behind every memory controller
 * and guarantees no virtual page maps onto them. When a controller's
 * mapped buckets are exhausted (log overflow), the LogM interrupts the
 * OS, which -- after an interrupt-handling latency -- maps additional
 * log pages for that controller. Grants are serialized per controller,
 * as a real interrupt handler would be.
 */

#ifndef ATOMSIM_OS_LOG_SPACE_HH
#define ATOMSIM_OS_LOG_SPACE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/** The OS side of ATOM's log-space management. */
class LogSpace
{
  public:
    /**
     * @param queues event queue of each controller's simulation domain
     *               (all the same queue in sequential runs). Every
     *               piece of LogSpace state is per-controller, so the
     *               service partitions cleanly across shards.
     */
    LogSpace(std::vector<EventQueue *> queues, const SystemConfig &cfg,
             StatSet &stats);

    /**
     * Log overflow interrupt from controller @p mc: map more buckets.
     * @p granted runs after the interrupt latency with the number of
     * extra buckets mapped (0 when the hardware capacity is exhausted,
     * in which case the caller must wait for truncations).
     */
    void requestMoreBuckets(McId mc,
                            std::function<void(std::uint32_t)> granted);

    /** Buckets handed out per grant. */
    std::uint32_t grantSize() const { return _grantSize; }

    std::uint64_t overflowInterrupts() const
    {
        return _statInterrupts.value();
    }

  private:
    /** Interrupt handling for @p mc finished: hand out the grant. */
    void grant(McId mc);

    std::vector<EventQueue *> _queues;  //!< per MC
    Cycles _latency;
    std::uint32_t _grantSize;
    /** Per-MC: interrupt being serviced. Byte-sized on purpose: MC
     * domains on different workers touch their own flag concurrently,
     * and vector<bool>'s packed words would make that a data race. */
    std::vector<std::uint8_t> _busy;
    std::vector<std::deque<std::function<void(std::uint32_t)>>> _pending;
    /** One recurring interrupt-completion event per controller. */
    std::vector<std::unique_ptr<TickEvent>> _grantEvents;

    Counter &_statInterrupts;
};

} // namespace atomsim

#endif // ATOMSIM_OS_LOG_SPACE_HH
