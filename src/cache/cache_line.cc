#include "cache/cache_line.hh"

namespace atomsim
{

const char *
coherenceName(CoherenceState s)
{
    switch (s) {
      case CoherenceState::Invalid: return "I";
      case CoherenceState::Shared: return "S";
      case CoherenceState::Exclusive: return "E";
      case CoherenceState::Modified: return "M";
    }
    return "?";
}

} // namespace atomsim
