#include "cache/cache_array.hh"

#include "sim/logging.hh"

namespace atomsim
{

CacheArray::CacheArray(std::uint32_t size_bytes, std::uint32_t assoc,
                       std::uint32_t index_div)
    : _assoc(assoc), _indexDiv(index_div == 0 ? 1 : index_div)
{
    panic_if(assoc == 0, "associativity must be > 0");
    const std::uint32_t lines = size_bytes / kLineBytes;
    panic_if(lines % assoc != 0, "lines not divisible by associativity");
    _numSets = lines / assoc;
    panic_if((_numSets & (_numSets - 1)) != 0,
             "set count must be a power of two (got %u)", _numSets);
    _frames.resize(lines);
}

std::uint32_t
CacheArray::setIndex(Addr line_addr) const
{
    return std::uint32_t((lineNumber(line_addr) / _indexDiv) &
                         (_numSets - 1));
}

CacheLineState *
CacheArray::find(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    const std::uint32_t set = setIndex(line_addr);
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        auto &frame = _frames[std::size_t(set) * _assoc + w];
        if (frame.valid && frame.tag == line_addr)
            return &frame;
    }
    return nullptr;
}

const CacheLineState *
CacheArray::find(Addr line_addr) const
{
    return const_cast<CacheArray *>(this)->find(line_addr);
}

CacheLineState *
CacheArray::touch(Addr line_addr)
{
    CacheLineState *frame = find(line_addr);
    if (frame)
        frame->lruStamp = ++_stamp;
    return frame;
}

CacheLineState *
CacheArray::victim(Addr line_addr)
{
    const std::uint32_t set = setIndex(lineAlign(line_addr));
    CacheLineState *lru = nullptr;
    CacheLineState *lru_any = nullptr;
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        auto &frame = _frames[std::size_t(set) * _assoc + w];
        if (!frame.valid)
            return &frame;
        if (!frame.pinned && (!lru || frame.lruStamp < lru->lruStamp))
            lru = &frame;
        if (!lru_any || frame.lruStamp < lru_any->lruStamp)
            lru_any = &frame;
    }
    // Prefer an unpinned victim; an all-pinned set (possible only with
    // more in-flight logged stores than ways) falls back to plain LRU.
    return lru ? lru : lru_any;
}

void
CacheArray::install(CacheLineState *frame, Addr line_addr)
{
    frame->reset();
    frame->tag = lineAlign(line_addr);
    frame->valid = true;
    frame->lruStamp = ++_stamp;
}

void
CacheArray::invalidateAll()
{
    for (auto &frame : _frames)
        frame.reset();
}

} // namespace atomsim
