#include "cache/directory.hh"

#include "sim/logging.hh"

namespace atomsim
{

DirEntry &
Directory::entry(Addr line_addr)
{
    return _entries[lineAlign(line_addr)];
}

void
Directory::erase(Addr line_addr)
{
    _entries.erase(lineAlign(line_addr));
}

void
Directory::releaseWaiter(Waiter *w)
{
    w->fn = nullptr;
    _pool.release(w);
}

void
Directory::acquire(Addr line_addr, Txn txn)
{
    line_addr = lineAlign(line_addr);
    auto [it, inserted] = _ctl.try_emplace(line_addr);
    LineCtl &ctl = it->second;
    if (inserted && _liveHw && _ctl.size() > _liveHwSeen) {
        _liveHwSeen = _ctl.size();
        _liveHw->set(_liveHwSeen);
    }
    if (!inserted && !ctl.busy)
        --_idleCtl;  // reusing a cached idle block
    if (ctl.busy) {
        Waiter *w = _pool.acquire();
        w->fn = std::move(txn);
        if (ctl.tail)
            ctl.tail->next = w;
        else
            ctl.head = w;
        ctl.tail = w;
        return;
    }
    ctl.busy = true;
    txn();
}

void
Directory::release(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    auto it = _ctl.find(line_addr);
    panic_if(it == _ctl.end() || !it->second.busy,
             "release of a line that is not busy");
    auto &ctl = it->second;
    if (ctl.head) {
        Waiter *w = ctl.head;
        ctl.head = w->next;
        if (!ctl.head)
            ctl.tail = nullptr;
        Txn next = std::move(w->fn);
        releaseWaiter(w);
        next();  // stays busy; next transaction owns the line now
        return;
    }
    // Cache the idle control block for the next transaction on this
    // line -- up to the cap, past which cold blocks are dropped.
    if (_idleCtl < _idleCap) {
        ctl.busy = false;
        ++_idleCtl;
    } else {
        if (_evictions)
            _evictions->inc();
        _ctl.erase(it);
    }
}

bool
Directory::busy(Addr line_addr) const
{
    auto it = _ctl.find(lineAlign(line_addr));
    return it != _ctl.end() && it->second.busy;
}

void
Directory::clear()
{
    _entries.clear();
    for (auto &kv : _ctl) {
        Waiter *w = kv.second.head;
        while (w) {
            Waiter *next = w->next;
            releaseWaiter(w);
            w = next;
        }
    }
    _ctl.clear();
    _idleCtl = 0;
}

} // namespace atomsim
