#include "cache/directory.hh"

#include "sim/logging.hh"

namespace atomsim
{

DirEntry &
Directory::entry(Addr line_addr)
{
    return _entries[lineAlign(line_addr)];
}

void
Directory::erase(Addr line_addr)
{
    _entries.erase(lineAlign(line_addr));
}

void
Directory::acquire(Addr line_addr, std::function<void()> txn)
{
    auto &ctl = _ctl[lineAlign(line_addr)];
    if (ctl.busy) {
        ctl.waiters.push_back(std::move(txn));
        return;
    }
    ctl.busy = true;
    txn();
}

void
Directory::release(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    auto it = _ctl.find(line_addr);
    panic_if(it == _ctl.end() || !it->second.busy,
             "release of a line that is not busy");
    auto &ctl = it->second;
    if (!ctl.waiters.empty()) {
        auto next = std::move(ctl.waiters.front());
        ctl.waiters.pop_front();
        next();  // stays busy; next transaction owns the line now
        return;
    }
    _ctl.erase(it);
}

bool
Directory::busy(Addr line_addr) const
{
    auto it = _ctl.find(lineAlign(line_addr));
    return it != _ctl.end() && it->second.busy;
}

void
Directory::clear()
{
    _entries.clear();
    _ctl.clear();
}

} // namespace atomsim
