/**
 * @file
 * Per-line cache state, including the ATOM log bit.
 */

#ifndef ATOMSIM_CACHE_CACHE_LINE_HH
#define ATOMSIM_CACHE_CACHE_LINE_HH

#include <cstdint>

#include "mem/phys_mem.hh"
#include "sim/types.hh"

namespace atomsim
{

/** MESI-style stable coherence states as seen by an L1. */
enum class CoherenceState : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

const char *coherenceName(CoherenceState s);

/** One cache line's bookkeeping + data. */
struct CacheLineState
{
    Addr tag = 0;               //!< line-aligned address
    bool valid = false;
    CoherenceState state = CoherenceState::Invalid;
    bool dirty = false;
    /**
     * ATOM log bit (Section III-B): set when the line has been logged
     * for the current atomic update; cleared when the modified value is
     * durably written back or the line is evicted (volatile metadata).
     */
    bool logBit = false;
    /**
     * Pinned while a store's log request is outstanding (the line is
     * the subject of an active MSHR transaction): replacement skips
     * pinned frames, preventing an evict/refetch/re-log feedback loop
     * under contention.
     */
    bool pinned = false;
    std::uint64_t lruStamp = 0; //!< bigger = more recently used
    Line data{};

    void
    reset()
    {
        valid = false;
        state = CoherenceState::Invalid;
        dirty = false;
        logBit = false;
        pinned = false;
        lruStamp = 0;
    }

    bool
    writable() const
    {
        return valid && (state == CoherenceState::Modified ||
                         state == CoherenceState::Exclusive);
    }
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_CACHE_LINE_HH
