#include "cache/l2_cache.hh"

#include "cache/l1_cache.hh"
#include "sim/logging.hh"

namespace atomsim
{

L2Tile::L2Tile(std::uint32_t tile_id, EventQueue &eq,
               const SystemConfig &cfg, Mesh &mesh, const AddressMap &amap,
               StatSet &stats)
    : _tileId(tile_id),
      _eq(eq),
      _cfg(cfg),
      _mesh(mesh),
      _amap(amap),
      _stats(stats),
      _array(cfg.l2TileBytes, cfg.l2Assoc, cfg.l2Tiles),
      _statHits(stats.counter("l2t" + std::to_string(tile_id), "hits")),
      _statMisses(stats.counter("l2t" + std::to_string(tile_id),
                                "misses")),
      _statRecalls(stats.counter("l2t" + std::to_string(tile_id),
                                 "recalls")),
      _statEvictions(stats.counter("l2t" + std::to_string(tile_id),
                                   "evictions")),
      _statVictimHits(stats.counter("l2t" + std::to_string(tile_id),
                                    "victim_hits"))
{
}

L2Tile::~L2Tile() = default;

void
L2Tile::after(Cycles delay, EventQueue::Callback fn)
{
    _eq.postIn(delay, std::move(fn));
}

void
L2Tile::meshDeliver(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::GetS:
        handleGetS(pkt.core, pkt.addr);
        return;
      case MsgType::GetX:
        handleGetX(pkt.core, pkt.addr, pkt.flag);
        return;
      case MsgType::Upgrade:
        handleUpgrade(pkt.core, pkt.addr, pkt.flag);
        return;
      case MsgType::FlushReq:
      case MsgType::Ctrl:
        handleFlush(pkt.core, pkt.addr, pkt.flag, pkt.data);
        return;
      case MsgType::FwdGetS:
        onFwdGetS(pkt.core, pkt.addr, CoreId(pkt.arg));
        return;
      case MsgType::FwdGetX:
        onFwdGetX(pkt.core, pkt.addr, CoreId(pkt.arg));
        return;
      case MsgType::Inv:
        onInv(pkt.addr, CoreId(pkt.arg));
        return;
      case MsgType::InvAck:
        onInvAck(pkt.addr);
        return;
      case MsgType::Data:
      case MsgType::DataExcl:
      case MsgType::DataLogged:
        // Memory fill response from an MC port.
        onMemFill(pkt.core, pkt.addr, pkt.data, pkt.logged, pkt.flag);
        return;
      default:
        panic("L2 tile %u: unexpected mesh message %s", _tileId,
              msgName(pkt.type));
    }
}

void
L2Tile::respondFill(CoreId core, Addr line, MsgType type,
                    const FillResult &result)
{
    Packet &p = _mesh.make(type);
    p.receiver = _l1s[core];
    p.core = core;
    p.addr = line;
    p.data = result.data;
    p.grant = result.grant;
    p.logged = result.logged;
    _mesh.send(_mesh.tileNode(_tileId), _mesh.coreNode(core), p);
}

void
L2Tile::sendFlushAck(CoreId core, Addr line)
{
    Packet &p = _mesh.make(MsgType::FlushAck);
    p.receiver = _l1s[core];
    p.core = core;
    p.addr = line;
    _mesh.send(_mesh.tileNode(_tileId), _mesh.coreNode(core), p);
}

void
L2Tile::writeThrough(Addr addr, const Line &data, WriteKind kind,
                     AckCallback on_durable)
{
    const McId mc = _amap.memCtrl(addr);
    Packet &p = _mesh.make(MsgType::MemWrite);
    p.receiver = _mcPorts[mc];
    p.addr = addr;
    p.arg = std::uint32_t(kind);
    p.data = data;
    p.cb = std::move(on_durable);
    _mesh.send(_mesh.tileNode(_tileId), _mesh.mcNode(mc), p);
}

void
L2Tile::recallOwner(Addr addr, DirEntry &dir, CacheLineState *frame)
{
    if (dir.owner == kNoCore)
        return;
    if (auto got = _l1s[dir.owner]->surrenderLine(addr);
        frame != nullptr && got.has_value() && got->second) {
        frame->data = got->first;
        frame->dirty = true;
    }
    dir.owner = kNoCore;
    _statRecalls.inc();
}

CacheLineState *
L2Tile::insertLine(Addr addr, const Line &data, bool dirty)
{
    CacheLineState *frame = _array.victim(addr);
    if (frame->valid) {
        // Inclusion: recall every L1 copy of the victim before it
        // leaves the L2. Synchronous, see file header.
        const Addr vaddr = frame->tag;
        DirEntry &vdir = _dir.entry(vaddr);
        recallOwner(vaddr, vdir, frame);
        for (CoreId c = 0; c < _l1s.size(); ++c) {
            if (vdir.sharers & (std::uint64_t(1) << c))
                _l1s[c]->invalidateLine(vaddr);
        }
        _dir.erase(vaddr);
        _statEvictions.inc();

        if (frame->dirty) {
            if (_victims) {
                // REDO: dirty evictions park in the victim cache so
                // NVM in-place data stays pristine until applied.
                _victims->put(vaddr, frame->data);
            } else {
                writeThrough(vaddr, frame->data, WriteKind::DataWb,
                             AckCallback{});
            }
        }
    }
    _array.install(frame, addr);
    frame->data = data;
    frame->dirty = dirty;
    return frame;
}

void
L2Tile::missToMemory(CoreId core, Addr addr, bool exclusive,
                     bool in_atomic)
{
    // REDO keeps dirty evictions out of NVM in an (infinite) victim
    // cache; fills must consult it before reading stale NVM data.
    if (_victims) {
        if (const Line *v = _victims->find(addr)) {
            _statVictimHits.inc();
            const Line data = *v;
            after(_cfg.l2Latency, [this, core, addr, exclusive, data] {
                onMemFill(core, addr, data, false, exclusive);
            });
            return;
        }
    }

    const McId mc = _amap.memCtrl(addr);
    Packet &p = _mesh.make(exclusive ? MsgType::GetX : MsgType::GetS);
    p.receiver = _mcPorts[mc];
    p.core = core;
    p.addr = addr;
    p.flag = in_atomic;
    p.arg = _tileId;
    _mesh.send(_mesh.tileNode(_tileId), _mesh.mcNode(mc), p);
}

void
L2Tile::onMemFill(CoreId core, Addr addr, const Line &data, bool logged,
                  bool exclusive)
{
    const Addr line = lineAlign(addr);
    insertLine(line, data, false);
    DirEntry &dir = _dir.entry(line);
    dir.owner = core;
    if (exclusive)
        dir.sharers = 0;
    const MsgType resp =
        exclusive ? (logged ? MsgType::DataLogged : MsgType::DataExcl)
                  : MsgType::Data;
    const CoherenceState grant = exclusive ? CoherenceState::Modified
                                           : CoherenceState::Exclusive;
    respondFill(core, line, resp, FillResult{data, grant, logged});
    _dir.release(line);
}

void
L2Tile::grantExclusive(CoreId requester, Addr line)
{
    CacheLineState *fr = _array.find(line);
    panic_if(!fr, "L2 lost line during busy txn");
    respondFill(requester, line, MsgType::DataExcl,
                FillResult{fr->data, CoherenceState::Modified, false});
    _dir.release(line);
}

void
L2Tile::invalidateSharers(CoreId requester, Addr line,
                          std::uint64_t mask)
{
    if (mask == 0) {
        grantExclusive(requester, line);
        return;
    }
    InvJoin *join = _joinPool.acquire();
    join->line = line;
    join->requester = requester;
    join->remaining = std::uint32_t(__builtin_popcountll(mask));
    join->next = _joinActive;
    _joinActive = join;

    for (CoreId c = 0; c < _l1s.size(); ++c) {
        if (!(mask & (std::uint64_t(1) << c)))
            continue;
        Packet &p = _mesh.make(MsgType::Inv);
        p.receiver = this;
        p.addr = line;
        p.arg = c;
        _mesh.send(_mesh.tileNode(_tileId), _mesh.coreNode(c), p);
    }
}

void
L2Tile::onInv(Addr line, CoreId target)
{
    // Executes at the sharer's node: drop the copy, ack back home.
    _l1s[target]->invalidateLine(line);
    Packet &p = _mesh.make(MsgType::InvAck);
    p.receiver = this;
    p.addr = line;
    _mesh.send(_mesh.coreNode(target), _mesh.tileNode(_tileId), p);
}

void
L2Tile::onInvAck(Addr line)
{
    InvJoin *prev = nullptr;
    InvJoin *join = _joinActive;
    while (join && join->line != line) {
        prev = join;
        join = join->next;
    }
    panic_if(!join, "InvAck with no invalidation round in flight");
    if (--join->remaining != 0)
        return;
    if (prev)
        prev->next = join->next;
    else
        _joinActive = join->next;
    const CoreId requester = join->requester;
    _joinPool.release(join);
    grantExclusive(requester, line);
}

void
L2Tile::handleGetS(CoreId core, Addr addr)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line] {
        _dir.acquire(line, Directory::Txn([this, core, line] {
            CacheLineState *frame = _array.touch(line);
            if (frame) {
                _statHits.inc();
                DirEntry &dir = _dir.entry(line);
                if (dir.owner != kNoCore && dir.owner != core) {
                    // 3-hop read: forward to the owner, who downgrades
                    // to Shared and supplies the freshest data.
                    const CoreId owner = dir.owner;
                    Packet &p = _mesh.make(MsgType::FwdGetS);
                    p.receiver = this;
                    p.core = core;
                    p.addr = line;
                    p.arg = owner;
                    _mesh.send(_mesh.tileNode(_tileId),
                               _mesh.coreNode(owner), p);
                    return;
                }
                // Plain hit: grant E if nobody shares, else S (MESI).
                const bool exclusive_grant =
                    dir.sharers == 0 && dir.owner == kNoCore;
                CoherenceState grant = exclusive_grant
                                           ? CoherenceState::Exclusive
                                           : CoherenceState::Shared;
                if (exclusive_grant)
                    dir.owner = core;
                else
                    dir.sharers |= std::uint64_t(1) << core;
                respondFill(core, line, MsgType::Data,
                            FillResult{frame->data, grant, false});
                _dir.release(line);
                return;
            }

            // L2 miss: fetch from memory, install, grant Exclusive.
            _statMisses.inc();
            missToMemory(core, line, false, false);
        }));
    });
}

void
L2Tile::onFwdGetS(CoreId requester, Addr line, CoreId owner)
{
    // Executes at the owner's node.
    CacheLineState *fr = _array.find(line);
    panic_if(!fr, "L2 lost line during busy txn");
    if (auto d = _l1s[owner]->downgradeLine(line)) {
        fr->data = *d;
        fr->dirty = true;
    }
    DirEntry &dir = _dir.entry(line);
    dir.owner = kNoCore;
    dir.sharers |= std::uint64_t(1) << owner;
    dir.sharers |= std::uint64_t(1) << requester;
    Packet &p = _mesh.make(MsgType::Data);
    p.receiver = _l1s[requester];
    p.core = requester;
    p.addr = line;
    p.data = fr->data;
    p.grant = CoherenceState::Shared;
    _mesh.send(_mesh.coreNode(owner), _mesh.coreNode(requester), p);
    _dir.release(line);
}

void
L2Tile::handleGetX(CoreId core, Addr addr, bool in_atomic)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line, in_atomic] {
        _dir.acquire(line, Directory::Txn([this, core, line, in_atomic] {
            CacheLineState *frame = _array.touch(line);
            if (frame) {
                _statHits.inc();
                DirEntry &dir = _dir.entry(line);
                if (dir.owner == core) {
                    // The "owner" silently dropped a clean Exclusive
                    // copy and re-missed: re-grant from the L2 copy.
                    respondFill(core, line, MsgType::DataExcl,
                                FillResult{frame->data,
                                           CoherenceState::Modified,
                                           false});
                    _dir.release(line);
                    return;
                }

                if (dir.owner != kNoCore) {
                    // Forward to the owner; ownership moves to the
                    // requester with the freshest data.
                    const CoreId owner = dir.owner;
                    Packet &p = _mesh.make(MsgType::FwdGetX);
                    p.receiver = this;
                    p.core = core;
                    p.addr = line;
                    p.arg = owner;
                    _mesh.send(_mesh.tileNode(_tileId),
                               _mesh.coreNode(owner), p);
                    return;
                }

                // Invalidate every sharer except the requester, then
                // grant Modified.
                const std::uint64_t mask =
                    dir.sharers & ~(std::uint64_t(1) << core);
                dir.owner = core;
                dir.sharers = 0;
                invalidateSharers(core, line, mask);
                return;
            }

            // L2 miss: fetch (source-logging eligible), install, grant.
            _statMisses.inc();
            missToMemory(core, line, true, in_atomic);
        }));
    });
}

void
L2Tile::onFwdGetX(CoreId requester, Addr line, CoreId owner)
{
    // Executes at the owner's node. Defer while the owner has an
    // outstanding log request for the line (a real controller NACKs
    // the forward; stealing mid-log forces re-logs that convoy on
    // contended lines).
    _l1s[owner]->whenUnpinned(
        line, [this, requester, line, owner] {
            CacheLineState *fr = _array.find(line);
            panic_if(!fr, "L2 lost line during busy txn");
            if (auto got = _l1s[owner]->surrenderLine(line)) {
                if (got->second) {
                    fr->data = got->first;
                    fr->dirty = true;
                }
            }
            DirEntry &dir = _dir.entry(line);
            dir.owner = requester;
            dir.sharers = 0;
            Packet &p = _mesh.make(MsgType::DataExcl);
            p.receiver = _l1s[requester];
            p.core = requester;
            p.addr = line;
            p.data = fr->data;
            p.grant = CoherenceState::Modified;
            _mesh.send(_mesh.coreNode(owner),
                       _mesh.coreNode(requester), p);
            _dir.release(line);
        });
}

void
L2Tile::handleUpgrade(CoreId core, Addr addr, bool in_atomic)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line, in_atomic] {
        _dir.acquire(line, Directory::Txn([this, core, line, in_atomic] {
            CacheLineState *frame = _array.touch(line);
            DirEntry &dir = _dir.entry(line);
            const bool still_sharer =
                frame && (dir.sharers & (std::uint64_t(1) << core));
            if (!still_sharer) {
                // The requester lost the line (invalidated or L2
                // evicted it): morph into a full GetX. Release first;
                // handleGetX re-acquires.
                _dir.release(line);
                handleGetX(core, line, in_atomic);
                return;
            }

            const std::uint64_t mask =
                dir.sharers & ~(std::uint64_t(1) << core);
            dir.owner = core;
            dir.sharers = 0;
            invalidateSharers(core, line, mask);
        }));
    });
}

void
L2Tile::putMSync(CoreId core, Addr addr, const Line &data)
{
    const Addr line = lineAlign(addr);
    CacheLineState *frame = _array.find(line);
    DirEntry &dir = _dir.entry(line);
    if (dir.owner == core)
        dir.owner = kNoCore;
    dir.sharers &= ~(std::uint64_t(1) << core);
    if (frame) {
        frame->data = data;
        frame->dirty = true;
    } else {
        // Inclusion says this cannot happen for a tracked line; it can
        // only occur if the L2 victimized the line in the same tick.
        insertLine(line, data, true);
    }
}

void
L2Tile::handleFlush(CoreId core, Addr addr, bool has_data,
                    const Line &data)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line, has_data, data] {
        _dir.acquire(line,
                     Directory::Txn([this, core, line, has_data, data] {
            CacheLineState *frame = _array.find(line);
            DirEntry &dir = _dir.entry(line);

            // Freshest data wins: current owner > flusher > L2 copy.
            const Line *to_write = nullptr;
            if (dir.owner != kNoCore && dir.owner != core) {
                recallOwner(line, dir, frame);
                if (frame && frame->dirty)
                    to_write = &frame->data;
            }
            if (!to_write && has_data)
                to_write = &data;
            if (!to_write && frame && frame->dirty)
                to_write = &frame->data;

            if (to_write) {
                if (frame) {
                    frame->data = *to_write;
                    frame->dirty = false;  // NVM copy now matches
                }
                writeThrough(line, *to_write, WriteKind::Flush,
                             [this, core, line] {
                                 sendFlushAck(core, line);
                             });
            } else {
                // Nothing dirty anywhere: only wait out any write to
                // this line still queued in the controller.
                const McId mc = _amap.memCtrl(line);
                Packet &p = _mesh.make(MsgType::FlushReq);
                p.receiver = _mcPorts[mc];
                p.addr = line;
                p.cb = MeshCallback([this, core, line] {
                    sendFlushAck(core, line);
                });
                _mesh.send(_mesh.tileNode(_tileId), _mesh.mcNode(mc), p);
            }
            _dir.release(line);
        }));
    });
}

void
L2Tile::powerFail()
{
    _array.invalidateAll();
    _dir.clear();
    while (_joinActive) {
        InvJoin *j = _joinActive;
        _joinActive = j->next;
        _joinPool.release(j);
    }
}

} // namespace atomsim
