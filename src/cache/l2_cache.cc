#include "cache/l2_cache.hh"

#include "cache/l1_cache.hh"
#include "sim/logging.hh"

namespace atomsim
{

L2Tile::L2Tile(std::uint32_t tile_id, EventQueue &eq,
               const SystemConfig &cfg, Mesh &mesh, const AddressMap &amap,
               StatSet &stats)
    : _tileId(tile_id),
      _eq(eq),
      _cfg(cfg),
      _mesh(mesh),
      _amap(amap),
      _stats(stats),
      _array(cfg.l2TileBytes, cfg.l2Assoc, cfg.l2Tiles),
      _statHits(stats.counter("l2t" + std::to_string(tile_id), "hits")),
      _statMisses(stats.counter("l2t" + std::to_string(tile_id),
                                "misses")),
      _statRecalls(stats.counter("l2t" + std::to_string(tile_id),
                                 "recalls")),
      _statEvictions(stats.counter("l2t" + std::to_string(tile_id),
                                   "evictions")),
      _statVictimHits(stats.counter("l2t" + std::to_string(tile_id),
                                    "victim_hits"))
{
    // Directory control-block occupancy (ROADMAP follow-up): high-water
    // mark of live per-line control blocks, plus the at-cap eviction
    // count that signals idle-cache thrash. The cap scales with the
    // core count (a fixed 64K cap thrashes at 256+ tiles).
    _dir.setIdleCap(Directory::idleCapFor(cfg.numCores));
    _dir.attachStats(
        &stats.counter("dir" + std::to_string(tile_id),
                       "ctrl_blocks_live"),
        &stats.counter("dir" + std::to_string(tile_id),
                       "ctrl_evictions"));
}

L2Tile::~L2Tile() = default;

void
L2Tile::after(Cycles delay, EventQueue::Callback fn)
{
    _eq.postIn(delay, std::move(fn));
}

void
L2Tile::meshDeliver(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::GetS:
        handleGetS(pkt.core, pkt.addr);
        return;
      case MsgType::GetX:
        handleGetX(pkt.core, pkt.addr, pkt.flag);
        return;
      case MsgType::Upgrade:
        handleUpgrade(pkt.core, pkt.addr, pkt.flag);
        return;
      case MsgType::PutM:
        handlePutM(pkt.core, pkt.addr, pkt.data);
        return;
      case MsgType::FlushReq:
      case MsgType::Ctrl:
        handleFlush(pkt.core, pkt.addr, pkt.flag, pkt.data);
        return;
      case MsgType::FwdAckS:
        onFwdAckS(pkt);
        return;
      case MsgType::FwdAckX:
        onFwdAckX(pkt);
        return;
      case MsgType::InvAck:
        roundAck(pkt.addr, false, false, pkt.data);
        return;
      case MsgType::RecallAck:
        roundAck(pkt.addr, pkt.flag, pkt.dirty, pkt.data);
        return;
      case MsgType::Data:
      case MsgType::DataExcl:
      case MsgType::DataLogged:
        // Memory fill response from an MC port.
        onMemFill(pkt.core, pkt.addr, pkt.data, pkt.logged, pkt.flag);
        return;
      default:
        panic("L2 tile %u: unexpected mesh message %s", _tileId,
              msgName(pkt.type));
    }
}

void
L2Tile::respondFill(CoreId core, Addr line, MsgType type,
                    const FillResult &result)
{
    Packet &p = _mesh.make(type);
    p.receiver = _l1s[core];
    p.core = core;
    p.addr = line;
    p.data = result.data;
    p.grant = result.grant;
    p.logged = result.logged;
    _mesh.send(_mesh.tileNode(_tileId), _mesh.coreNode(core), p);
}

void
L2Tile::sendFlushAck(CoreId core, Addr line)
{
    Packet &p = _mesh.make(MsgType::FlushAck);
    p.receiver = _l1s[core];
    p.core = core;
    p.addr = line;
    _mesh.send(_mesh.tileNode(_tileId), _mesh.coreNode(core), p);
}

void
L2Tile::writeThrough(Addr addr, const Line &data, WriteKind kind,
                     AckCallback on_durable)
{
    const McId mc = _amap.memCtrl(addr);
    Packet &p = _mesh.make(MsgType::MemWrite);
    p.receiver = _mcPorts[mc];
    p.addr = addr;
    p.arg = std::uint32_t(kind);
    p.data = data;
    p.cb = std::move(on_durable);
    _mesh.send(_mesh.tileNode(_tileId), _mesh.mcNode(mc), p);
}

L2Tile::PendingFill *
L2Tile::acquireFill()
{
    PendingFill *pf = _fillPool.acquire();
    pf->activeNext = _fillActive;
    _fillActive = pf;
    return pf;
}

void
L2Tile::releaseFill(PendingFill *pf)
{
    PendingFill *prev = nullptr;
    PendingFill *cur = _fillActive;
    while (cur && cur != pf) {
        prev = cur;
        cur = cur->activeNext;
    }
    panic_if(!cur, "releasing a PendingFill that is not in flight");
    if (prev)
        prev->activeNext = pf->activeNext;
    else
        _fillActive = pf->activeNext;
    pf->activeNext = nullptr;
    pf->next = nullptr;
    _fillPool.release(pf);
}

void
L2Tile::startRound(Addr line, CoreId owner, const SharerSet &sharers,
                   RoundCallback done)
{
    const std::uint32_t remaining =
        (owner != kNoCore ? 1 : 0) + sharers.count();
    if (remaining == 0) {
        Round scratch;  // nothing to collect
        done(scratch);
        return;
    }

    Round *round = _roundPool.acquire();
    round->line = line;
    round->remaining = remaining;
    round->gotData = false;
    round->gotDirty = false;
    round->done = std::move(done);
    round->next = _roundActive;
    _roundActive = round;

    if (owner != kNoCore) {
        Packet &p = _mesh.make(MsgType::Recall);
        p.receiver = _l1s[owner];
        p.core = owner;
        p.addr = line;
        _mesh.send(_mesh.tileNode(_tileId), _mesh.coreNode(owner), p);
    }
    for (CoreId c = 0; c < _l1s.size(); ++c) {
        if (!sharers.test(c))
            continue;
        Packet &p = _mesh.make(MsgType::Inv);
        p.receiver = _l1s[c];
        p.core = c;
        p.addr = line;
        _mesh.send(_mesh.tileNode(_tileId), _mesh.coreNode(c), p);
    }
}

void
L2Tile::roundAck(Addr line, bool has_data, bool dirty, const Line &data)
{
    Round *prev = nullptr;
    Round *round = _roundActive;
    while (round && round->line != line) {
        prev = round;
        round = round->next;
    }
    panic_if(!round, "protocol ack for a line with no round in flight");
    if (has_data) {
        round->gotData = true;
        if (dirty) {
            round->gotDirty = true;
            round->data = data;
        }
    }
    if (--round->remaining != 0)
        return;
    if (prev)
        prev->next = round->next;
    else
        _roundActive = round->next;
    // Run the continuation with the round detached but alive (it may
    // start new rounds; the pool will not hand this node out until
    // the release below).
    RoundCallback done = std::move(round->done);
    done(*round);
    round->done = nullptr;
    round->next = nullptr;
    _roundPool.release(round);
}

void
L2Tile::evictThen(CacheLineState *frame, PendingFill *pf)
{
    // Inclusion: recall every L1 copy of the victim before it leaves
    // the L2 -- a split-phase round under the victim's busy bit. The
    // frame is pinned so concurrent fills to the set pick other ways
    // (or park until this eviction completes).
    const Addr vaddr = frame->tag;
    frame->pinned = true;
    _dir.acquire(vaddr, Directory::Txn([this, frame, vaddr, pf] {
        DirEntry &vdir = _dir.entry(vaddr);
        const CoreId owner = vdir.owner;
        const SharerSet sharers = std::move(vdir.sharers);
        vdir.owner = kNoCore;
        vdir.sharers.reset();
        if (owner != kNoCore)
            _statRecalls.inc();
        startRound(vaddr, owner, sharers,
                   [this, frame, vaddr, pf](Round &r) {
            if (r.gotDirty) {
                frame->data = r.data;
                frame->dirty = true;
            }
            _statEvictions.inc();
            if (frame->dirty) {
                if (_victims) {
                    // REDO: dirty evictions park in the victim cache
                    // so NVM in-place data stays pristine until
                    // applied.
                    _victims->put(vaddr, frame->data);
                } else {
                    writeThrough(vaddr, frame->data, WriteKind::DataWb,
                                 AckCallback{});
                }
            }
            _dir.erase(vaddr);
            frame->pinned = false;

            const CoreId core = pf->core;
            const Addr line = pf->line;
            const Line data = pf->data;
            const bool logged = pf->logged;
            const bool exclusive = pf->exclusive;
            releaseFill(pf);
            // Install the fill into the frame *before* releasing the
            // victim's busy bit: Directory::release runs the next
            // queued transaction synchronously, and a demand access
            // to the victim queued during the round must find the
            // frame re-tagged (a clean miss), not be granted the
            // stale still-valid copy the L2 is about to drop.
            finishFill(frame, core, line, data, logged, exclusive);
            _dir.release(vaddr);
            retryStalledFills();
        });
    }));
}

void
L2Tile::retryStalledFills()
{
    if (!_stallHead)
        return;
    PendingFill *head = _stallHead;
    _stallHead = _stallTail = nullptr;
    while (head) {
        PendingFill *pf = head;
        head = pf->next;
        pf->next = nullptr;
        const CoreId core = pf->core;
        const Addr line = pf->line;
        const Line data = pf->data;
        const bool logged = pf->logged;
        const bool exclusive = pf->exclusive;
        releaseFill(pf);
        onMemFill(core, line, data, logged, exclusive);
    }
}

void
L2Tile::missToMemory(CoreId core, Addr addr, bool exclusive,
                     bool in_atomic)
{
    // REDO keeps dirty evictions out of NVM in an (infinite) victim
    // cache; fills must consult it before reading stale NVM data.
    if (_victims) {
        if (const Line *v = _victims->find(addr)) {
            _statVictimHits.inc();
            const Line data = *v;
            after(_cfg.l2Latency, [this, core, addr, exclusive, data] {
                onMemFill(core, addr, data, false, exclusive);
            });
            return;
        }
    }

    const McId mc = _amap.memCtrl(addr);
    Packet &p = _mesh.make(exclusive ? MsgType::GetX : MsgType::GetS);
    p.receiver = _mcPorts[mc];
    p.core = core;
    p.addr = addr;
    p.flag = in_atomic;
    p.arg = _tileId;
    _mesh.send(_mesh.tileNode(_tileId), _mesh.mcNode(mc), p);
}

void
L2Tile::onMemFill(CoreId core, Addr addr, const Line &data, bool logged,
                  bool exclusive)
{
    const Addr line = lineAlign(addr);
    CacheLineState *frame = _array.victim(line);
    if (!frame->valid) {
        finishFill(frame, core, line, data, logged, exclusive);
        return;
    }

    PendingFill *pf = acquireFill();
    pf->core = core;
    pf->line = line;
    pf->data = data;
    pf->logged = logged;
    pf->exclusive = exclusive;

    if (frame->pinned) {
        // Every unpinned way of the set is mid-eviction; park until
        // one completes (bounded: rounds always finish).
        pf->next = nullptr;
        if (_stallTail)
            _stallTail->next = pf;
        else
            _stallHead = pf;
        _stallTail = pf;
        return;
    }
    evictThen(frame, pf);
}

void
L2Tile::finishFill(CacheLineState *frame, CoreId core, Addr line,
                   const Line &data, bool logged, bool exclusive)
{
    _array.install(frame, line);
    frame->data = data;
    frame->dirty = false;
    DirEntry &dir = _dir.entry(line);
    dir.owner = core;
    if (exclusive)
        dir.sharers.reset();
    const MsgType resp =
        exclusive ? (logged ? MsgType::DataLogged : MsgType::DataExcl)
                  : MsgType::Data;
    const CoherenceState grant = exclusive ? CoherenceState::Modified
                                           : CoherenceState::Exclusive;
    respondFill(core, line, resp, FillResult{data, grant, logged});
    _dir.release(line);
}

void
L2Tile::grantExclusive(CoreId requester, Addr line)
{
    CacheLineState *fr = _array.find(line);
    panic_if(!fr, "L2 lost line during busy txn");
    respondFill(requester, line, MsgType::DataExcl,
                FillResult{fr->data, CoherenceState::Modified, false});
    _dir.release(line);
}

void
L2Tile::invalidateSharers(CoreId requester, Addr line,
                          const SharerSet &mask)
{
    startRound(line, kNoCore, mask, [this, requester, line](Round &) {
        grantExclusive(requester, line);
    });
}

void
L2Tile::handleGetS(CoreId core, Addr addr)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line] {
        _dir.acquire(line, Directory::Txn([this, core, line] {
            CacheLineState *frame = _array.touch(line);
            if (frame) {
                _statHits.inc();
                DirEntry &dir = _dir.entry(line);
                if (dir.owner != kNoCore && dir.owner != core) {
                    // Forward to the owner's L1, which downgrades to
                    // Shared and ships its copy home (FwdAckS); the
                    // home then grants the requester.
                    const CoreId owner = dir.owner;
                    Packet &p = _mesh.make(MsgType::FwdGetS);
                    p.receiver = _l1s[owner];
                    p.core = core;
                    p.addr = line;
                    _mesh.send(_mesh.tileNode(_tileId),
                               _mesh.coreNode(owner), p);
                    return;
                }
                // Plain hit: grant E if nobody shares, else S (MESI).
                const bool exclusive_grant =
                    dir.sharers.none() && dir.owner == kNoCore;
                CoherenceState grant = exclusive_grant
                                           ? CoherenceState::Exclusive
                                           : CoherenceState::Shared;
                if (exclusive_grant)
                    dir.owner = core;
                else
                    dir.sharers.set(core);
                respondFill(core, line, MsgType::Data,
                            FillResult{frame->data, grant, false});
                _dir.release(line);
                return;
            }

            // L2 miss: fetch from memory, install, grant Exclusive.
            _statMisses.inc();
            missToMemory(core, line, false, false);
        }));
    });
}

void
L2Tile::onFwdAckS(const Packet &pkt)
{
    // The (former) owner downgraded and shipped its copy home. Merge
    // it, grant the requester *from here* -- the home->requester pair
    // is the same FIFO channel every later revocation of the line
    // uses, so the grant can never be overtaken -- and release.
    const Addr line = pkt.addr;
    const CoreId requester = pkt.core;
    const CoreId owner = CoreId(pkt.arg);
    CacheLineState *fr = _array.find(line);
    panic_if(!fr, "L2 lost line during busy txn");
    if (pkt.flag && pkt.dirty) {
        fr->data = pkt.data;
        fr->dirty = true;
    }
    DirEntry &dir = _dir.entry(line);
    dir.owner = kNoCore;
    dir.sharers.set(owner);
    dir.sharers.set(requester);
    respondFill(requester, line, MsgType::Data,
                FillResult{fr->data, CoherenceState::Shared, false});
    _dir.release(line);
}

void
L2Tile::handleGetX(CoreId core, Addr addr, bool in_atomic)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line, in_atomic] {
        _dir.acquire(line, Directory::Txn([this, core, line, in_atomic] {
            CacheLineState *frame = _array.touch(line);
            if (frame) {
                _statHits.inc();
                DirEntry &dir = _dir.entry(line);
                if (dir.owner == core) {
                    // The "owner" silently dropped a clean Exclusive
                    // copy and re-missed: re-grant from the L2 copy.
                    respondFill(core, line, MsgType::DataExcl,
                                FillResult{frame->data,
                                           CoherenceState::Modified,
                                           false});
                    _dir.release(line);
                    return;
                }

                if (dir.owner != kNoCore) {
                    // Forward to the owner's L1; the surrendered copy
                    // returns home (FwdAckX) and the home grants the
                    // requester Modified.
                    const CoreId owner = dir.owner;
                    Packet &p = _mesh.make(MsgType::FwdGetX);
                    p.receiver = _l1s[owner];
                    p.core = core;
                    p.addr = line;
                    _mesh.send(_mesh.tileNode(_tileId),
                               _mesh.coreNode(owner), p);
                    return;
                }

                // Invalidate every sharer except the requester, then
                // grant Modified.
                SharerSet mask = std::move(dir.sharers);
                mask.clear(core);
                dir.owner = core;
                dir.sharers.reset();
                invalidateSharers(core, line, mask);
                return;
            }

            // L2 miss: fetch (source-logging eligible), install, grant.
            _statMisses.inc();
            missToMemory(core, line, true, in_atomic);
        }));
    });
}

void
L2Tile::onFwdAckX(const Packet &pkt)
{
    // Ownership moves to the requester; the old owner's surrendered
    // copy (if any) merged here, and the home grants Modified on the
    // revocation-ordered home->requester channel (see onFwdAckS).
    const Addr line = pkt.addr;
    const CoreId requester = pkt.core;
    CacheLineState *fr = _array.find(line);
    panic_if(!fr, "L2 lost line during busy txn");
    if (pkt.flag && pkt.dirty) {
        fr->data = pkt.data;
        fr->dirty = true;
    }
    DirEntry &dir = _dir.entry(line);
    dir.owner = requester;
    dir.sharers.reset();
    respondFill(requester, line, MsgType::DataExcl,
                FillResult{fr->data, CoherenceState::Modified, false});
    _dir.release(line);
}

void
L2Tile::handleUpgrade(CoreId core, Addr addr, bool in_atomic)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line, in_atomic] {
        _dir.acquire(line, Directory::Txn([this, core, line, in_atomic] {
            CacheLineState *frame = _array.touch(line);
            DirEntry &dir = _dir.entry(line);
            const bool still_sharer =
                frame && dir.sharers.test(core);
            if (!still_sharer) {
                // The requester lost the line (invalidated or L2
                // evicted it): morph into a full GetX. Release first;
                // handleGetX re-acquires.
                _dir.release(line);
                handleGetX(core, line, in_atomic);
                return;
            }

            SharerSet mask = std::move(dir.sharers);
            mask.clear(core);
            dir.owner = core;
            dir.sharers.reset();
            invalidateSharers(core, line, mask);
        }));
    });
}

void
L2Tile::sendWbAck(CoreId core, Addr line)
{
    Packet &p = _mesh.make(MsgType::WbAck);
    p.receiver = _l1s[core];
    p.core = core;
    p.addr = line;
    _mesh.send(_mesh.tileNode(_tileId), _mesh.coreNode(core), p);
}

void
L2Tile::handlePutM(CoreId core, Addr addr, const Line &data)
{
    const Addr line = lineAlign(addr);
    _dir.acquire(line, Directory::Txn([this, core, line, data] {
        DirEntry &dir = _dir.entry(line);
        if (dir.owner == core) {
            // Inclusion: a line whose owner we still track must be
            // resident (evictions clear the owner under the same busy
            // bit this transaction waited on).
            CacheLineState *frame = _array.find(line);
            panic_if(!frame,
                     "PutM from the tracked owner but the line left "
                     "the L2");
            frame->data = data;
            frame->dirty = true;
            dir.owner = kNoCore;
        }
        // Otherwise a recall or forward crossed this PutM in the mesh
        // and already took the data from the L1's writeback buffer:
        // the PutM is stale, drop it. Always ack so the L1 frees its
        // writeback-buffer slot.
        sendWbAck(core, line);
        _dir.release(line);
    }));
}

void
L2Tile::handleFlush(CoreId core, Addr addr, bool has_data,
                    const Line &data)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line, has_data, data] {
        _dir.acquire(line,
                     Directory::Txn([this, core, line, has_data, data] {
            DirEntry &dir = _dir.entry(line);
            if (dir.owner != kNoCore && dir.owner != core) {
                // Pull the freshest copy back from the owner first --
                // a split-phase recall round under the busy bit.
                const CoreId owner = dir.owner;
                dir.owner = kNoCore;
                _statRecalls.inc();
                startRound(line, owner, SharerSet{},
                           [this, core, line, has_data,
                            data](Round &r) {
                    CacheLineState *frame = _array.find(line);
                    if (frame && r.gotDirty) {
                        frame->data = r.data;
                        frame->dirty = true;
                    }
                    finishFlush(core, line, has_data, data, true);
                });
                return;
            }
            finishFlush(core, line, has_data, data, false);
        }));
    });
}

void
L2Tile::finishFlush(CoreId core, Addr line, bool has_data,
                    const Line &data, bool owner_recalled)
{
    CacheLineState *frame = _array.find(line);

    // Freshest data wins: recalled owner copy > flusher > L2 copy.
    const Line *to_write = nullptr;
    if (owner_recalled && frame && frame->dirty)
        to_write = &frame->data;
    if (!to_write && has_data)
        to_write = &data;
    if (!to_write && frame && frame->dirty)
        to_write = &frame->data;

    if (to_write) {
        if (frame) {
            frame->data = *to_write;
            frame->dirty = false;  // NVM copy now matches
        }
        writeThrough(line, *to_write, WriteKind::Flush,
                     [this, core, line] {
                         sendFlushAck(core, line);
                     });
    } else {
        // Nothing dirty anywhere: only wait out any write to this
        // line still queued in the controller.
        const McId mc = _amap.memCtrl(line);
        Packet &p = _mesh.make(MsgType::FlushReq);
        p.receiver = _mcPorts[mc];
        p.addr = line;
        p.cb = MeshCallback([this, core, line] {
            sendFlushAck(core, line);
        });
        _mesh.send(_mesh.tileNode(_tileId), _mesh.mcNode(mc), p);
    }
    _dir.release(line);
}

void
L2Tile::powerFail()
{
    _array.invalidateAll();
    _dir.clear();
    // In-flight recall/invalidation rounds and parked fills die with
    // the caches; reclaim their pooled records (their acks will never
    // arrive -- nothing runs after powerFail).
    while (_roundActive) {
        Round *r = _roundActive;
        _roundActive = r->next;
        r->done = nullptr;
        r->next = nullptr;
        _roundPool.release(r);
    }
    while (_fillActive) {
        PendingFill *pf = _fillActive;
        _fillActive = pf->activeNext;
        pf->activeNext = nullptr;
        pf->next = nullptr;
        _fillPool.release(pf);
    }
    _stallHead = _stallTail = nullptr;
}

} // namespace atomsim
