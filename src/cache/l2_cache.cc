#include "cache/l2_cache.hh"

#include "cache/l1_cache.hh"
#include "sim/logging.hh"

namespace atomsim
{

L2Tile::L2Tile(std::uint32_t tile_id, EventQueue &eq,
               const SystemConfig &cfg, Mesh &mesh, const AddressMap &amap,
               std::vector<std::unique_ptr<MemoryController>> &mcs,
               StatSet &stats)
    : _tileId(tile_id),
      _eq(eq),
      _cfg(cfg),
      _mesh(mesh),
      _amap(amap),
      _mcs(mcs),
      _stats(stats),
      _array(cfg.l2TileBytes, cfg.l2Assoc, cfg.l2Tiles),
      _statHits(stats.counter("l2t" + std::to_string(tile_id), "hits")),
      _statMisses(stats.counter("l2t" + std::to_string(tile_id),
                                "misses")),
      _statRecalls(stats.counter("l2t" + std::to_string(tile_id),
                                 "recalls")),
      _statEvictions(stats.counter("l2t" + std::to_string(tile_id),
                                   "evictions")),
      _statVictimHits(stats.counter("l2t" + std::to_string(tile_id),
                                    "victim_hits"))
{
}

void
L2Tile::after(Cycles delay, std::function<void()> fn)
{
    _eq.postIn(delay, std::move(fn));
}

void
L2Tile::respondFill(CoreId core, MsgType type, FillResult result,
                    FillCallback respond)
{
    _mesh.send(_mesh.tileNode(_tileId), _mesh.coreNode(core), type,
               [result = std::move(result),
                respond = std::move(respond)] { respond(result); });
}

void
L2Tile::writeThrough(Addr addr, const Line &data, WriteKind kind,
                     AckCallback on_durable)
{
    const McId mc = _amap.memCtrl(addr);
    _mesh.send(_mesh.tileNode(_tileId), _mesh.mcNode(mc), MsgType::MemWrite,
               [this, mc, addr, data, kind,
                on_durable = std::move(on_durable)]() mutable {
                   _mcs[mc]->writeLine(addr, data, kind,
                                       std::move(on_durable));
               });
}

void
L2Tile::recallOwner(Addr addr, DirEntry &dir, CacheLineState *frame)
{
    if (dir.owner == kNoCore)
        return;
    if (auto got = _l1s[dir.owner]->surrenderLine(addr);
        frame != nullptr && got.has_value() && got->second) {
        frame->data = got->first;
        frame->dirty = true;
    }
    dir.owner = kNoCore;
    _statRecalls.inc();
}

CacheLineState *
L2Tile::insertLine(Addr addr, const Line &data, bool dirty)
{
    CacheLineState *frame = _array.victim(addr);
    if (frame->valid) {
        // Inclusion: recall every L1 copy of the victim before it
        // leaves the L2. Synchronous, see file header.
        const Addr vaddr = frame->tag;
        DirEntry &vdir = _dir.entry(vaddr);
        recallOwner(vaddr, vdir, frame);
        for (CoreId c = 0; c < _l1s.size(); ++c) {
            if (vdir.sharers & (std::uint64_t(1) << c))
                _l1s[c]->invalidateLine(vaddr);
        }
        _dir.erase(vaddr);
        _statEvictions.inc();

        if (frame->dirty) {
            if (_victims) {
                // REDO: dirty evictions park in the victim cache so
                // NVM in-place data stays pristine until applied.
                _victims->put(vaddr, frame->data);
            } else {
                writeThrough(vaddr, frame->data, WriteKind::DataWb,
                             AckCallback{});
            }
        }
    }
    _array.install(frame, addr);
    frame->data = data;
    frame->dirty = dirty;
    return frame;
}

void
L2Tile::missToMemory(CoreId core, Addr addr, bool exclusive,
                     bool in_atomic,
                     std::function<void(const Line &, bool)> k)
{
    // REDO keeps dirty evictions out of NVM in an (infinite) victim
    // cache; fills must consult it before reading stale NVM data.
    if (_victims) {
        if (const Line *v = _victims->find(addr)) {
            _statVictimHits.inc();
            Line data = *v;
            after(_cfg.l2Latency, [k = std::move(k),
                                   data = std::move(data)] {
                k(data, false);
            });
            return;
        }
    }

    const McId mc = _amap.memCtrl(addr);
    const std::uint32_t tile_node = _mesh.tileNode(_tileId);
    const std::uint32_t mc_node = _mesh.mcNode(mc);
    _mesh.send(tile_node, mc_node, exclusive ? MsgType::GetX : MsgType::GetS,
               [this, core, addr, exclusive, in_atomic, mc, mc_node,
                tile_node, k = std::move(k)]() mutable {
        _mcs[mc]->readLine(addr, ReadKind::Demand,
            [this, core, addr, exclusive, in_atomic, mc, mc_node,
             tile_node, k = std::move(k)](const Line &data) mutable {
            bool logged = false;
            // Source-logging (Section III-D): the controller has just
            // read the pre-transaction value of the line; log it here
            // and return the data with the log bit set.
            if (exclusive && in_atomic && mc < _sourceLoggers.size() &&
                _sourceLoggers[mc]) {
                logged = _sourceLoggers[mc]->sourceLogFill(core, addr,
                                                           data);
            }
            const MsgType resp =
                logged ? MsgType::DataLogged
                       : (exclusive ? MsgType::DataExcl : MsgType::Data);
            _mesh.send(mc_node, tile_node, resp,
                       [data, logged, k = std::move(k)] {
                           k(data, logged);
                       });
        });
    });
}

void
L2Tile::handleGetS(CoreId core, Addr addr, FillCallback respond)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line,
                           respond = std::move(respond)]() mutable {
        _dir.acquire(line, [this, core, line,
                            respond = std::move(respond)]() mutable {
            CacheLineState *frame = _array.touch(line);
            if (frame) {
                _statHits.inc();
                DirEntry &dir = _dir.entry(line);
                if (dir.owner != kNoCore && dir.owner != core) {
                    // 3-hop read: forward to the owner, who downgrades
                    // to Shared and supplies the freshest data.
                    const CoreId owner = dir.owner;
                    const std::uint32_t owner_node = _mesh.coreNode(owner);
                    _mesh.send(_mesh.tileNode(_tileId), owner_node,
                               MsgType::FwdGetS,
                               [this, core, line, owner, owner_node,
                                respond = std::move(respond)]() mutable {
                        CacheLineState *fr = _array.find(line);
                        panic_if(!fr, "L2 lost line during busy txn");
                        if (auto d = _l1s[owner]->downgradeLine(line)) {
                            fr->data = *d;
                            fr->dirty = true;
                        }
                        DirEntry &dir2 = _dir.entry(line);
                        dir2.owner = kNoCore;
                        dir2.sharers |= std::uint64_t(1) << owner;
                        dir2.sharers |= std::uint64_t(1) << core;
                        FillResult res{fr->data, CoherenceState::Shared,
                                       false};
                        _mesh.send(owner_node, _mesh.coreNode(core),
                                   MsgType::Data,
                                   [res = std::move(res),
                                    respond = std::move(respond)] {
                                       respond(res);
                                   });
                        _dir.release(line);
                    });
                    return;
                }
                // Plain hit: grant E if nobody shares, else S (MESI).
                const bool exclusive_grant =
                    dir.sharers == 0 && dir.owner == kNoCore;
                CoherenceState grant = exclusive_grant
                                           ? CoherenceState::Exclusive
                                           : CoherenceState::Shared;
                if (exclusive_grant)
                    dir.owner = core;
                else
                    dir.sharers |= std::uint64_t(1) << core;
                respondFill(core, MsgType::Data,
                            FillResult{frame->data, grant, false},
                            std::move(respond));
                _dir.release(line);
                return;
            }

            // L2 miss: fetch from memory, install, grant Exclusive.
            _statMisses.inc();
            missToMemory(core, line, false, false,
                         [this, core, line, respond = std::move(respond)](
                             const Line &data, bool) mutable {
                insertLine(line, data, false);
                DirEntry &dir = _dir.entry(line);
                dir.owner = core;
                respondFill(core, MsgType::Data,
                            FillResult{data, CoherenceState::Exclusive,
                                       false},
                            std::move(respond));
                _dir.release(line);
            });
        });
    });
}

void
L2Tile::handleGetX(CoreId core, Addr addr, bool in_atomic,
                   FillCallback respond)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line, in_atomic,
                           respond = std::move(respond)]() mutable {
        _dir.acquire(line, [this, core, line, in_atomic,
                            respond = std::move(respond)]() mutable {
            CacheLineState *frame = _array.touch(line);
            if (frame) {
                _statHits.inc();
                DirEntry &dir = _dir.entry(line);
                if (dir.owner == core) {
                    // The "owner" silently dropped a clean Exclusive
                    // copy and re-missed: re-grant from the L2 copy.
                    respondFill(core, MsgType::DataExcl,
                                FillResult{frame->data,
                                           CoherenceState::Modified,
                                           false},
                                std::move(respond));
                    _dir.release(line);
                    return;
                }

                if (dir.owner != kNoCore) {
                    // Forward to the owner; ownership moves to the
                    // requester with the freshest data.
                    const CoreId owner = dir.owner;
                    const std::uint32_t owner_node = _mesh.coreNode(owner);
                    _mesh.send(_mesh.tileNode(_tileId), owner_node,
                               MsgType::FwdGetX,
                               [this, core, line, owner, owner_node,
                                respond = std::move(respond)]() mutable {
                        // Defer while the owner has an outstanding log
                        // request for the line (a real controller NACKs
                        // the forward; stealing mid-log forces re-logs
                        // that convoy on contended lines).
                        _l1s[owner]->whenUnpinned(line, [this, core,
                                                         line, owner,
                                                         owner_node,
                                                         respond =
                                                             std::move(
                                                                 respond)]() mutable {
                            CacheLineState *fr = _array.find(line);
                            panic_if(!fr, "L2 lost line during busy txn");
                            if (auto got =
                                    _l1s[owner]->surrenderLine(line)) {
                                if (got->second) {
                                    fr->data = got->first;
                                    fr->dirty = true;
                                }
                            }
                            DirEntry &dir2 = _dir.entry(line);
                            dir2.owner = core;
                            dir2.sharers = 0;
                            FillResult res{fr->data,
                                           CoherenceState::Modified,
                                           false};
                            _mesh.send(owner_node, _mesh.coreNode(core),
                                       MsgType::DataExcl,
                                       [res = std::move(res),
                                        respond = std::move(respond)] {
                                           respond(res);
                                       });
                            _dir.release(line);
                        });
                    });
                    return;
                }

                // Invalidate every sharer except the requester, then
                // grant Modified.
                std::vector<CoreId> to_inv;
                for (CoreId c = 0; c < _l1s.size(); ++c) {
                    if (c != core &&
                        (dir.sharers & (std::uint64_t(1) << c))) {
                        to_inv.push_back(c);
                    }
                }
                dir.owner = core;
                dir.sharers = 0;

                auto grant = [this, core, line,
                              respond = std::move(respond)]() mutable {
                    CacheLineState *fr = _array.find(line);
                    panic_if(!fr, "L2 lost line during busy txn");
                    respondFill(core, MsgType::DataExcl,
                                FillResult{fr->data,
                                           CoherenceState::Modified,
                                           false},
                                std::move(respond));
                    _dir.release(line);
                };

                if (to_inv.empty()) {
                    grant();
                    return;
                }
                auto pending = std::make_shared<std::size_t>(to_inv.size());
                auto grant_shared =
                    std::make_shared<decltype(grant)>(std::move(grant));
                for (CoreId c : to_inv) {
                    const std::uint32_t c_node = _mesh.coreNode(c);
                    _mesh.send(_mesh.tileNode(_tileId), c_node,
                               MsgType::Inv,
                               [this, c, c_node, line, pending,
                                grant_shared] {
                        _l1s[c]->invalidateLine(line);
                        _mesh.send(c_node, _mesh.tileNode(_tileId),
                                   MsgType::InvAck,
                                   [pending, grant_shared] {
                                       if (--*pending == 0)
                                           (*grant_shared)();
                                   });
                    });
                }
                return;
            }

            // L2 miss: fetch (source-logging eligible), install, grant.
            _statMisses.inc();
            missToMemory(core, line, true, in_atomic,
                         [this, core, line, respond = std::move(respond)](
                             const Line &data, bool logged) mutable {
                insertLine(line, data, false);
                DirEntry &dir = _dir.entry(line);
                dir.owner = core;
                dir.sharers = 0;
                respondFill(core,
                            logged ? MsgType::DataLogged
                                   : MsgType::DataExcl,
                            FillResult{data, CoherenceState::Modified,
                                       logged},
                            std::move(respond));
                _dir.release(line);
            });
        });
    });
}

void
L2Tile::handleUpgrade(CoreId core, Addr addr, bool in_atomic,
                      FillCallback respond)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line, in_atomic,
                           respond = std::move(respond)]() mutable {
        _dir.acquire(line, [this, core, line, in_atomic,
                            respond = std::move(respond)]() mutable {
            CacheLineState *frame = _array.touch(line);
            DirEntry &dir = frame ? _dir.entry(line) : _dir.entry(line);
            const bool still_sharer =
                frame && (dir.sharers & (std::uint64_t(1) << core));
            if (!still_sharer) {
                // The requester lost the line (invalidated or L2
                // evicted it): morph into a full GetX. Release first;
                // handleGetX re-acquires.
                _dir.release(line);
                handleGetX(core, line, in_atomic, std::move(respond));
                return;
            }

            std::vector<CoreId> to_inv;
            for (CoreId c = 0; c < _l1s.size(); ++c) {
                if (c != core && (dir.sharers & (std::uint64_t(1) << c)))
                    to_inv.push_back(c);
            }
            dir.owner = core;
            dir.sharers = 0;

            auto grant = [this, core, line,
                          respond = std::move(respond)]() mutable {
                CacheLineState *fr = _array.find(line);
                panic_if(!fr, "L2 lost line during busy txn");
                respondFill(core, MsgType::DataExcl,
                            FillResult{fr->data, CoherenceState::Modified,
                                       false},
                            std::move(respond));
                _dir.release(line);
            };
            if (to_inv.empty()) {
                grant();
                return;
            }
            auto pending = std::make_shared<std::size_t>(to_inv.size());
            auto grant_shared =
                std::make_shared<decltype(grant)>(std::move(grant));
            for (CoreId c : to_inv) {
                const std::uint32_t c_node = _mesh.coreNode(c);
                _mesh.send(_mesh.tileNode(_tileId), c_node, MsgType::Inv,
                           [this, c, c_node, line, pending,
                            grant_shared] {
                    _l1s[c]->invalidateLine(line);
                    _mesh.send(c_node, _mesh.tileNode(_tileId),
                               MsgType::InvAck,
                               [pending, grant_shared] {
                                   if (--*pending == 0)
                                       (*grant_shared)();
                               });
                });
            }
        });
    });
}

void
L2Tile::putMSync(CoreId core, Addr addr, const Line &data)
{
    const Addr line = lineAlign(addr);
    CacheLineState *frame = _array.find(line);
    DirEntry &dir = _dir.entry(line);
    if (dir.owner == core)
        dir.owner = kNoCore;
    dir.sharers &= ~(std::uint64_t(1) << core);
    if (frame) {
        frame->data = data;
        frame->dirty = true;
    } else {
        // Inclusion says this cannot happen for a tracked line; it can
        // only occur if the L2 victimized the line in the same tick.
        insertLine(line, data, true);
    }
}

void
L2Tile::handleFlush(CoreId core, Addr addr, bool has_data,
                    const Line &data, AckCallback respond)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l2Latency, [this, core, line, has_data, data,
                           respond = std::move(respond)]() mutable {
        _dir.acquire(line, [this, core, line, has_data, data,
                            respond = std::move(respond)]() mutable {
            CacheLineState *frame = _array.find(line);
            DirEntry &dir = _dir.entry(line);

            // Freshest data wins: current owner > flusher > L2 copy.
            const Line *to_write = nullptr;
            if (dir.owner != kNoCore && dir.owner != core) {
                recallOwner(line, dir, frame);
                if (frame && frame->dirty)
                    to_write = &frame->data;
            }
            if (!to_write && has_data)
                to_write = &data;
            if (!to_write && frame && frame->dirty)
                to_write = &frame->data;

            const McId mc = _amap.memCtrl(line);
            const std::uint32_t tile_node = _mesh.tileNode(_tileId);
            const std::uint32_t core_node = _mesh.coreNode(core);
            auto ack_back = [this, tile_node, core_node,
                             respond = std::move(respond)]() mutable {
                _mesh.send(tile_node, core_node, MsgType::FlushAck,
                           std::move(respond));
            };

            if (to_write) {
                if (frame) {
                    frame->data = *to_write;
                    frame->dirty = false;  // NVM copy now matches
                }
                writeThrough(line, *to_write, WriteKind::Flush,
                             std::move(ack_back));
            } else {
                // Nothing dirty anywhere: only wait out any write to
                // this line still queued in the controller.
                _mesh.send(tile_node, _mesh.mcNode(mc), MsgType::FlushReq,
                           [this, mc, line,
                            ack_back = std::move(ack_back)]() mutable {
                               _mcs[mc]->whenLineDurable(
                                   line, std::move(ack_back));
                           });
            }
            _dir.release(line);
        });
    });
}

void
L2Tile::powerFail()
{
    _array.invalidateAll();
    _dir.clear();
}

} // namespace atomsim
