#include "cache/l1_cache.hh"

#include <cstring>

#include "cache/l2_cache.hh"
#include "sim/logging.hh"

namespace atomsim
{

L1Cache::L1Cache(CoreId core, EventQueue &eq, const SystemConfig &cfg,
                 Mesh &mesh, const AddressMap &amap,
                 std::vector<std::unique_ptr<L2Tile>> &tiles,
                 StatSet &stats)
    : _core(core),
      _eq(eq),
      _cfg(cfg),
      _mesh(mesh),
      _amap(amap),
      _tiles(tiles),
      _array(cfg.l1SizeBytes, cfg.l1Assoc),
      _mshrs(cfg.mshrs),
      _statLoads(stats.counter("l1c" + std::to_string(core), "loads")),
      _statStores(stats.counter("l1c" + std::to_string(core), "stores")),
      _statLoadMisses(
          stats.counter("l1c" + std::to_string(core), "load_misses")),
      _statStoreMisses(
          stats.counter("l1c" + std::to_string(core), "store_misses")),
      _statWritebacks(
          stats.counter("l1c" + std::to_string(core), "writebacks")),
      _statLogRequests(
          stats.counter("l1c" + std::to_string(core), "log_requests")),
      _statWbHits(
          stats.counter("l1c" + std::to_string(core), "wb_hits"))
{
}

L1Cache::~L1Cache() = default;

void
L1Cache::after(Cycles delay, EventQueue::Callback fn)
{
    // Dynamic continuation (several can be in flight per cache): carried
    // by a pooled one-shot event with inline (non-allocating) storage.
    _eq.postIn(delay, std::move(fn));
}

std::uint32_t
L1Cache::homeTileOf(Addr addr) const
{
    return _amap.homeTile(addr);
}

std::uint32_t
L1Cache::myNode() const
{
    return _mesh.coreNode(_core);
}

L1Cache::PendingStore *
L1Cache::acquireStore()
{
    PendingStore *ps = _storePool.acquire();
    ps->activeNext = _storeActive;
    _storeActive = ps;
    return ps;
}

void
L1Cache::releaseStore(PendingStore *ps)
{
    // Unlink from the in-flight list (a handful of entries at most:
    // bounded by the SQ drain width plus logger overlap).
    PendingStore *prev = nullptr;
    PendingStore *cur = _storeActive;
    while (cur && cur != ps) {
        prev = cur;
        cur = cur->activeNext;
    }
    panic_if(!cur, "releasing a PendingStore that is not in flight");
    if (prev)
        prev->activeNext = ps->activeNext;
    else
        _storeActive = ps->activeNext;
    ps->activeNext = nullptr;
    ps->done = nullptr;
    _storePool.release(ps);
}

L1Cache::PendingFlush *
L1Cache::acquireFlush()
{
    return _flushPool.acquire();
}

void
L1Cache::releaseFlush(PendingFlush *pf)
{
    pf->done = nullptr;
    _flushPool.release(pf);
}

void
L1Cache::evictFrame(CacheLineState *frame)
{
    if (!frame->valid)
        return;
    const Addr vaddr = frame->tag;
    if (frame->dirty) {
        // Split-phase writeback: park the data in the writeback buffer
        // (freed by the home's WbAck) and ship a real PutM through the
        // mesh. Point-to-point FIFO ordering guarantees the PutM
        // reaches the home before any later request we send for the
        // same line; a recall crossing it in the other direction is
        // served from the buffer and the stale PutM dropped at home.
        _statWritebacks.inc();
        PendingPutM *wb = _wbPool.acquire();
        wb->line = vaddr;
        wb->data = frame->data;
        wb->next = nullptr;
        if (_wbTail)
            _wbTail->next = wb;
        else
            _wbHead = wb;
        _wbTail = wb;
        ++_wbCount;

        const std::uint32_t home = homeTileOf(vaddr);
        Packet &p = _mesh.make(MsgType::PutM);
        p.receiver = _tiles[home].get();
        p.core = _core;
        p.addr = vaddr;
        p.data = frame->data;
        _mesh.send(myNode(), _mesh.tileNode(home), p);
    }
    // Clean lines drop silently; the log bit is volatile and is lost
    // with the line (the paper re-logs on the next write; recovery
    // applies undo records newest-first so duplicates are safe).
    frame->reset();
}

L1Cache::PendingPutM *
L1Cache::findWb(Addr line)
{
    // Newest entry wins: with two writebacks of the same line in
    // flight, only the younger one carries current data.
    PendingPutM *hit = nullptr;
    for (PendingPutM *wb = _wbHead; wb; wb = wb->next) {
        if (wb->line == line)
            hit = wb;
    }
    return hit;
}

void
L1Cache::wbAcked(Addr line)
{
    // Free the *oldest* matching entry: WbAcks return in PutM order
    // (per-line FIFO through the home tile).
    PendingPutM *prev = nullptr;
    PendingPutM *wb = _wbHead;
    while (wb && wb->line != line) {
        prev = wb;
        wb = wb->next;
    }
    panic_if(!wb, "WbAck for a line with no writeback in flight");
    if (prev)
        prev->next = wb->next;
    else
        _wbHead = wb->next;
    if (_wbTail == wb)
        _wbTail = prev;
    --_wbCount;
    wb->next = nullptr;
    _wbPool.release(wb);
}

void
L1Cache::startMiss(Addr addr, bool exclusive,
                   MshrTable::Continuation retry)
{
    const Addr line = lineAlign(addr);
    if (_mshrs.has(line)) {
        _mshrs.addWaiter(line, std::move(retry));
        return;
    }
    if (_mshrs.full()) {
        // Structural stall: re-attempt the whole access when an MSHR
        // frees up.
        _mshrs.queueForFree(std::move(retry));
        return;
    }
    _mshrs.allocate(line);
    _mshrs.addWaiter(line, std::move(retry));

    const std::uint32_t home = homeTileOf(line);
    const bool in_atomic = _logger && _logger->inAtomic(_core);

    // Upgrade when we already hold the line Shared.
    CacheLineState *frame = _array.find(line);
    const bool upgrade = !exclusive ? false
                         : (frame && frame->valid &&
                            frame->state == CoherenceState::Shared);

    MsgType req = exclusive ? (upgrade ? MsgType::Upgrade : MsgType::GetX)
                            : MsgType::GetS;
    Packet &p = _mesh.make(req);
    p.receiver = _tiles[home].get();
    p.core = _core;
    p.addr = line;
    p.flag = in_atomic;
    _mesh.send(myNode(), _mesh.tileNode(home), p);
}

void
L1Cache::meshDeliver(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::Data:
      case MsgType::DataExcl:
      case MsgType::DataLogged: {
        const FillResult result{pkt.data, pkt.grant, pkt.logged};
        fillArrived(pkt.addr, result);
        return;
      }
      case MsgType::FlushAck:
        flushAcked(pkt.addr);
        return;
      case MsgType::Inv:
        handleInv(pkt.addr);
        return;
      case MsgType::Recall:
        handleRecall(pkt.addr);
        return;
      case MsgType::FwdGetS:
        handleFwdGetS(pkt.core, pkt.addr);
        return;
      case MsgType::FwdGetX:
        handleFwdGetX(pkt.core, pkt.addr);
        return;
      case MsgType::WbAck:
        wbAcked(pkt.addr);
        return;
      default:
        panic("L1 %u: unexpected mesh message %s", _core,
              msgName(pkt.type));
    }
}

void
L1Cache::handleInv(Addr line)
{
    invalidateLine(line);
    const std::uint32_t home = homeTileOf(line);
    Packet &p = _mesh.make(MsgType::InvAck);
    p.receiver = _tiles[home].get();
    p.core = _core;
    p.addr = line;
    _mesh.send(myNode(), _mesh.tileNode(home), p);
}

void
L1Cache::handleRecall(Addr line)
{
    const std::uint32_t home = homeTileOf(line);
    Packet &p = _mesh.make(MsgType::RecallAck);
    p.receiver = _tiles[home].get();
    p.core = _core;
    p.addr = line;
    if (auto got = surrenderLine(line)) {
        p.flag = true;
        p.dirty = got->second;
        p.data = got->first;
    }
    _mesh.send(myNode(), _mesh.tileNode(home), p);
}

void
L1Cache::handleFwdGetS(CoreId requester, Addr line)
{
    // Downgrade our copy in place (log bit survives: the line is still
    // logged for this atomic update even if another core reads it)
    // and ship whatever we had back home. The *home* grants the
    // requester: every grant and every revocation for a line then
    // travels on the single home->L1 pair, whose point-to-point FIFO
    // makes a revocation overtaking an in-flight grant impossible --
    // with owner->requester direct data there is no such ordering.
    bool has = false;
    bool was_dirty = false;
    Line data{};
    if (CacheLineState *frame = _array.find(line);
        frame && frame->valid) {
        has = true;
        was_dirty = frame->dirty;
        data = frame->data;
        frame->state = CoherenceState::Shared;
        frame->dirty = false;
    } else if (PendingPutM *wb = findWb(line)) {
        // Our PutM is still in flight; answer from the buffer (the
        // home drops the stale PutM when it lands).
        has = true;
        was_dirty = true;
        data = wb->data;
    }

    const std::uint32_t home = homeTileOf(line);
    Packet &a = _mesh.make(MsgType::FwdAckS);
    a.receiver = _tiles[home].get();
    a.core = requester;
    a.arg = _core;  // the (former) owner
    a.addr = line;
    a.flag = has;
    a.dirty = was_dirty;
    a.data = data;
    _mesh.send(myNode(), _mesh.tileNode(home), a);
}

void
L1Cache::handleFwdGetX(CoreId requester, Addr line)
{
    // Defer while we have an outstanding log request for the line (a
    // real controller NACKs the forward; stealing mid-log forces
    // re-logs that convoy on contended lines). As with FwdGetS, the
    // surrendered copy goes home and the home grants the requester
    // (see handleFwdGetS for why).
    whenUnpinned(line, [this, requester, line] {
        bool has = false;
        bool was_dirty = false;
        Line data{};
        if (auto got = surrenderLine(line)) {
            has = true;
            was_dirty = got->second;
            data = got->first;
        }

        const std::uint32_t home = homeTileOf(line);
        Packet &a = _mesh.make(MsgType::FwdAckX);
        a.receiver = _tiles[home].get();
        a.core = requester;
        a.arg = _core;
        a.addr = line;
        a.flag = has;
        a.dirty = was_dirty;
        a.data = data;
        _mesh.send(myNode(), _mesh.tileNode(home), a);
    });
}

void
L1Cache::fillArrived(Addr addr, const FillResult &result)
{
    const Addr line = lineAlign(addr);
    CacheLineState *frame = _array.find(line);
    if (!frame) {
        frame = _array.victim(line);
        evictFrame(frame);
        _array.install(frame, line);
        frame->data = result.data;
    } else {
        // Upgrade fill: keep our copy only if we stayed Shared; an
        // invalidation may have raced the upgrade, making the response
        // data authoritative.
        if (frame->state == CoherenceState::Invalid || !frame->valid)
            frame->data = result.data;
        _array.touch(line);
    }
    frame->valid = true;
    frame->state = result.grant;
    if (result.logged)
        frame->logBit = true;

    for (MshrTable::Waiter *w = _mshrs.complete(line); w;)
        w = _mshrs.runAndPop(w);
}

void
L1Cache::load(Addr addr, Callback done)
{
    _statLoads.inc();
    after(_cfg.l1Latency, [this, addr, done = std::move(done)]() mutable {
        CacheLineState *frame = _array.touch(addr);
        if (frame && frame->valid) {
            done();
            return;
        }
        if (_cfg.l1WbHit && findWb(lineAlign(addr))) {
            // Writeback-buffer snoop hit (SystemConfig::l1WbHit): the
            // line we just evicted is still parked here waiting for
            // its WbAck, and the buffered copy is the newest value of
            // the line (we were its owner), so the load's data is
            // available locally -- no round trip through home. This
            // is a pure timing shortcut: the line is *not* revived in
            // the array (the PutM is already in the mesh, and without
            // a writeback-cancel handshake a locally-revived Modified
            // copy would go untracked by the directory once the home
            // processes the PutM). The next access after the buffer
            // drains misses and refetches normally.
            _statWbHits.inc();
            done();
            return;
        }
        _statLoadMisses.inc();
        startMiss(addr, false,
                  [this, addr, done = std::move(done)]() mutable {
                      // Line present now (fills run waiters right after
                      // install); complete the load.
                      CacheLineState *fr = _array.touch(addr);
                      if (fr && fr->valid) {
                          done();
                      } else {
                          // Evicted before we ran: retry from scratch.
                          load(addr, std::move(done));
                      }
                  });
    });
}

void
L1Cache::store(Addr addr, const std::uint8_t *bytes, std::uint32_t size,
               Callback done)
{
    panic_if(lineAlign(addr) != lineAlign(addr + size - 1),
             "store spans a line boundary (addr %llx size %u)",
             (unsigned long long)addr, size);
    panic_if(size > kLineBytes, "store larger than a line");
    _statStores.inc();
    PendingStore *ps = acquireStore();
    ps->addr = addr;
    ps->size = size;
    std::memcpy(ps->bytes.data(), bytes, size);
    ps->done = std::move(done);
    after(_cfg.l1Latency, [this, ps, epoch = _epoch] {
        if (epoch == _epoch)
            finishStore(ps);
    });
}

void
L1Cache::finishStore(PendingStore *ps)
{
    CacheLineState *frame = _array.touch(ps->addr);
    if (!frame || !frame->valid || !frame->writable()) {
        _statStoreMisses.inc();
        startMiss(ps->addr, true, [this, ps] { finishStore(ps); });
        return;
    }

    if (_logger) {
        const auto mode = _logger->mode();
        if (mode == StoreLogger::Mode::Undo && _logger->inAtomic(_core) &&
            !frame->logBit) {
            // Invariant 1: create the undo entry before the store
            // modifies the line. The pre-store value is the line's
            // current content. The line stays pinned while the log
            // request is outstanding so replacement cannot evict it
            // and force a wasteful refetch + duplicate log entry.
            _statLogRequests.inc();
            frame->pinned = true;
            const Line old_value = frame->data;
            const Addr line = lineAlign(ps->addr);
            _logger->onFirstWrite(_core, line, old_value,
                                  [this, ps, epoch = _epoch] {
                                      if (epoch == _epoch)
                                          storeLogged(ps);
                                  });
            return;
        }
        if (mode == StoreLogger::Mode::Redo && _logger->inAtomic(_core)) {
            _statLogRequests.inc();
            // The frame holds write permission right now, so its data
            // is the line's coherent pre-store image -- the logger
            // captures it here (merging the store's bytes) rather
            // than chasing the line through the hierarchy later.
            _logger->onStore(_core, lineAlign(ps->addr), frame->data,
                             std::uint32_t(ps->addr - frame->tag),
                             ps->bytes.data(), ps->size,
                             [this, ps, epoch = _epoch] {
                                 if (epoch == _epoch)
                                     applyStore(ps, false);
                             });
            return;
        }
    }
    applyStore(ps, false);
}

void
L1Cache::storeLogged(PendingStore *ps)
{
    const Addr line = lineAlign(ps->addr);
    if (CacheLineState *fr = _array.find(line))
        fr->pinned = false;
    applyStore(ps, true);
    // The store has applied: run any coherence action
    // (forward/invalidation) deferred by the pin.
    auto it = _unpinWaiters.find(line);
    if (it != _unpinWaiters.end()) {
        auto waiters = std::move(it->second);
        _unpinWaiters.erase(it);
        for (auto &w : waiters)
            w();
    }
}

void
L1Cache::applyStore(PendingStore *ps, bool set_log_bit)
{
    // Re-find: the frame may have moved/evicted while logging.
    CacheLineState *fr = _array.find(ps->addr);
    if (!fr || !fr->valid || !fr->writable()) {
        // Lost permission while waiting on the logger (rare): the
        // log entry exists, so redo the access. The fresh log request
        // that may result is matched against the AUS's already-logged
        // lines at the LogM and acked without a new entry -- were it
        // appended instead, a store thrashing against recalls would
        // seal a one-entry record per retry until the log region ran
        // out, wedging the machine in the overflow interrupt.
        finishStore(ps);
        return;
    }
    const std::size_t off = ps->addr - fr->tag;
    std::memcpy(fr->data.data() + off, ps->bytes.data(), ps->size);
    fr->state = CoherenceState::Modified;
    fr->dirty = true;
    if (set_log_bit)
        fr->logBit = true;
    Callback done = std::move(ps->done);
    releaseStore(ps);
    done();
}

void
L1Cache::flush(Addr addr, Callback done)
{
    const Addr line = lineAlign(addr);
    after(_cfg.l1Latency, [this, line, done = std::move(done)]() mutable {
        CacheLineState *frame = _array.find(line);
        bool has_data = false;
        Line data{};
        if (frame && frame->valid && frame->dirty) {
            has_data = true;
            data = frame->data;
            frame->dirty = false;   // NVM will hold this value
            frame->logBit = false;  // durably written: clear log bit
        } else if (frame && frame->valid) {
            frame->logBit = false;
        }
        // Park the completion; the home tile's FlushAck resumes it.
        PendingFlush *pf = acquireFlush();
        pf->line = line;
        pf->done = std::move(done);
        pf->next = nullptr;
        if (_flushTail)
            _flushTail->next = pf;
        else
            _flushHead = pf;
        _flushTail = pf;

        const std::uint32_t home = homeTileOf(line);
        Packet &p = _mesh.make(has_data ? MsgType::FlushReq
                                        : MsgType::Ctrl);
        p.receiver = _tiles[home].get();
        p.core = _core;
        p.addr = line;
        p.flag = has_data;
        p.data = data;
        _mesh.send(myNode(), _mesh.tileNode(home), p);
    });
}

void
L1Cache::flushAcked(Addr line)
{
    PendingFlush *prev = nullptr;
    PendingFlush *pf = _flushHead;
    while (pf && pf->line != line) {
        prev = pf;
        pf = pf->next;
    }
    panic_if(!pf, "FlushAck for a line with no outstanding flush");
    if (prev)
        prev->next = pf->next;
    else
        _flushHead = pf->next;
    if (_flushTail == pf)
        _flushTail = prev;
    Callback done = std::move(pf->done);
    releaseFlush(pf);
    done();
}

void
L1Cache::whenUnpinned(Addr addr, Callback action)
{
    const Addr line = lineAlign(addr);
    CacheLineState *frame = _array.find(line);
    if (frame && frame->valid && frame->pinned) {
        _unpinWaiters[line].push_back(std::move(action));
        return;
    }
    action();
}

std::optional<std::pair<Line, bool>>
L1Cache::surrenderLine(Addr addr)
{
    CacheLineState *frame = _array.find(addr);
    if (frame && frame->valid) {
        auto result = std::make_pair(frame->data, frame->dirty);
        frame->reset();
        return result;
    }
    // Not resident -- but a writeback of it may still be in flight, in
    // which case the buffered copy is the authoritative one (the home
    // will drop the stale PutM when it lands).
    if (PendingPutM *wb = findWb(addr))
        return std::make_pair(wb->data, true);
    return std::nullopt;
}

void
L1Cache::invalidateLine(Addr addr)
{
    CacheLineState *frame = _array.find(addr);
    if (frame && frame->valid)
        frame->reset();
}

void
L1Cache::powerFail()
{
    ++_epoch;  // strand any still-queued slot-holding continuation
    _array.invalidateAll();
    _mshrs.clear();
    // The continuations that would have resumed in-flight stores and
    // flushes died with the MSHRs or went inert with the epoch bump;
    // the accesses are lost (matching Section IV-D), so reclaim their
    // pooled transaction state.
    while (_storeActive) {
        PendingStore *ps = _storeActive;
        _storeActive = ps->activeNext;
        ps->activeNext = nullptr;
        ps->done = nullptr;
        _storePool.release(ps);
    }
    while (_flushHead) {
        PendingFlush *pf = _flushHead;
        _flushHead = pf->next;
        releaseFlush(pf);
    }
    _flushTail = nullptr;
    // In-flight writebacks die with the rest of the volatile machine:
    // the PutM packets still in the mesh will never be acked, so
    // reclaim their buffer slots here (the home-side stale check makes
    // a post-crash delivery harmless anyway -- nothing runs after
    // powerFail).
    while (_wbHead) {
        PendingPutM *wb = _wbHead;
        _wbHead = wb->next;
        wb->next = nullptr;
        _wbPool.release(wb);
    }
    _wbTail = nullptr;
    _wbCount = 0;
    _unpinWaiters.clear();
}

} // namespace atomsim
