#include "cache/mshr.hh"

#include "sim/logging.hh"

namespace atomsim
{

MshrTable::MshrTable(std::uint32_t entries) : _entries(entries) {}

MshrTable::~MshrTable() = default;

MshrTable::Entry *
MshrTable::find(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    for (Entry &e : _entries) {
        if (e.used && e.line == line_addr)
            return &e;
    }
    return nullptr;
}

const MshrTable::Entry *
MshrTable::find(Addr line_addr) const
{
    return const_cast<MshrTable *>(this)->find(line_addr);
}

bool
MshrTable::has(Addr line_addr) const
{
    return find(line_addr) != nullptr;
}

void
MshrTable::releaseWaiter(Waiter *w)
{
    w->fn = nullptr;
    _pool.release(w);
}

void
MshrTable::releaseChain(Waiter *w)
{
    while (w) {
        Waiter *next = w->next;
        releaseWaiter(w);
        w = next;
    }
}

void
MshrTable::allocate(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    panic_if(find(line_addr), "MSHR already allocated for line");
    panic_if(full(), "MSHR table full");
    for (Entry &e : _entries) {
        if (!e.used) {
            e.used = true;
            e.line = line_addr;
            e.head = e.tail = nullptr;
            ++_active;
            return;
        }
    }
    panic("MSHR allocate: no free entry despite !full()");
}

void
MshrTable::addWaiter(Addr line_addr, Continuation fn)
{
    Entry *e = find(line_addr);
    panic_if(!e, "no MSHR for line");
    Waiter *w = _pool.acquire();
    w->fn = std::move(fn);
    if (e->tail)
        e->tail->next = w;
    else
        e->head = w;
    e->tail = w;
}

MshrTable::Waiter *
MshrTable::complete(Addr line_addr)
{
    Entry *e = find(line_addr);
    panic_if(!e, "completing a miss with no MSHR");
    Waiter *chain = e->head;
    Waiter *chain_tail = e->tail;
    e->used = false;
    e->head = e->tail = nullptr;
    --_active;

    // An entry freed: admit one queued overflow request, after the
    // line's own waiters.
    if (_overflowHead) {
        Waiter *w = _overflowHead;
        _overflowHead = w->next;
        if (!_overflowHead)
            _overflowTail = nullptr;
        --_overflowCount;
        w->next = nullptr;
        if (chain_tail)
            chain_tail->next = w;
        else
            chain = w;
    }
    return chain;
}

MshrTable::Waiter *
MshrTable::runAndPop(Waiter *w)
{
    Waiter *next = w->next;
    w->fn();
    releaseWaiter(w);
    return next;
}

void
MshrTable::queueForFree(Continuation fn)
{
    Waiter *w = _pool.acquire();
    w->fn = std::move(fn);
    if (_overflowTail)
        _overflowTail->next = w;
    else
        _overflowHead = w;
    _overflowTail = w;
    ++_overflowCount;
}

void
MshrTable::clear()
{
    for (Entry &e : _entries) {
        if (e.used) {
            releaseChain(e.head);
            e.used = false;
            e.head = e.tail = nullptr;
        }
    }
    _active = 0;
    releaseChain(_overflowHead);
    _overflowHead = _overflowTail = nullptr;
    _overflowCount = 0;
}

} // namespace atomsim
