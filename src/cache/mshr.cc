#include "cache/mshr.hh"

#include "sim/logging.hh"

namespace atomsim
{

void
MshrTable::allocate(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    panic_if(_active.count(line_addr), "MSHR already allocated for line");
    panic_if(full(), "MSHR table full");
    _active.emplace(line_addr, std::vector<Waiter>{});
}

void
MshrTable::addWaiter(Addr line_addr, Waiter w)
{
    line_addr = lineAlign(line_addr);
    auto it = _active.find(line_addr);
    panic_if(it == _active.end(), "no MSHR for line");
    it->second.push_back(std::move(w));
}

std::vector<MshrTable::Waiter>
MshrTable::complete(Addr line_addr)
{
    line_addr = lineAlign(line_addr);
    auto it = _active.find(line_addr);
    panic_if(it == _active.end(), "completing a miss with no MSHR");
    std::vector<Waiter> waiters = std::move(it->second);
    _active.erase(it);

    // An entry freed: admit one queued overflow request.
    if (!_overflow.empty()) {
        Waiter next = std::move(_overflow.front());
        _overflow.pop_front();
        waiters.push_back(std::move(next));
    }
    return waiters;
}

void
MshrTable::clear()
{
    _active.clear();
    _overflow.clear();
}

} // namespace atomsim
