/**
 * @file
 * Private per-core L1 data cache with the ATOM LogI hook.
 *
 * The L1 services the core's loads, stores and flushes. Stores inside
 * an atomic region consult the installed StoreLogger (the ATOM LogI
 * module or the REDO front end) before modifying a line, implementing
 * Invariant 1: a store does not complete until its undo entry exists.
 *
 * The miss path is allocation-free in steady state: completion
 * callbacks are fixed-capacity continuations, miss waiters live in the
 * MSHR table's pooled nodes, and a store's in-flight state (payload
 * bytes + completion) lives in a pooled PendingStore slot that follows
 * the store from first miss through logging to apply -- the
 * continuation is owned by the transaction, not by heap closures.
 * Mesh messages are typed packets (mem/packet.hh): the L1 is the
 * MeshSink for its fill responses, flush acks, and -- since the
 * split-phase coherence rework -- every inbound protocol leg
 * (Inv / Recall / FwdGetS / FwdGetX / WbAck). The home tile never
 * calls into the L1 directly; all L1<->L2 interaction is real mesh
 * traffic, which is what lets each core+L1 pair live in its own
 * simulation domain (see sim/shard.hh).
 *
 * Dirty evictions are split-phase too: the line parks in a pooled
 * writeback buffer entry while its PutM travels to the home tile, and
 * the entry is freed by the home's WbAck. A Recall / FwdGetX that
 * crosses an in-flight PutM is answered from the writeback buffer;
 * the home detects the resulting stale PutM by its directory owner
 * field and drops it (see l2_cache.hh).
 */

#ifndef ATOMSIM_CACHE_L1_CACHE_HH
#define ATOMSIM_CACHE_L1_CACHE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/mshr.hh"
#include "mem/address_map.hh"
#include "net/mesh.hh"
#include "sim/callback.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"

namespace atomsim
{

class L2Tile;
struct FillResult;

/** Completion callback handed into the L1 by the core / store queue /
 * commit protocol. Fixed capacity: no heap, enforced at compile time. */
static constexpr std::size_t kCacheCallbackBytes = 40;
using CacheCallback = InplaceCallback<kCacheCallbackBytes>;

/**
 * Hook consulted on the store path. Implemented by the ATOM LogI
 * module (undo designs) and by the REDO write-combining front end.
 */
class StoreLogger
{
  public:
    virtual ~StoreLogger() = default;

    /** What kind of logging the active design performs. */
    enum class Mode
    {
        None,  //!< NON-ATOMIC: no logging
        Undo,  //!< BASE / ATOM / ATOM-OPT: log first write per line
        Redo,  //!< REDO: log every store
    };

    virtual Mode mode() const = 0;

    /** True while @p core executes inside an atomic region. */
    virtual bool inAtomic(CoreId core) const = 0;

    /**
     * Undo designs: the first write to @p addr in this atomic update.
     * @p old_value is the pre-store line. Call @p done once the store
     * may modify the cache (Invariant 1); the L1 then sets the log bit.
     */
    virtual void onFirstWrite(CoreId core, Addr addr,
                              const Line &old_value,
                              CacheCallback done) = 0;

    /**
     * REDO: every store produces a redo entry. @p pre is the line's
     * current (pre-store) content and @p off / @p bytes / @p size the
     * store's payload within it: the logger owns the entry's data from
     * this moment (pre-image plus merged store bytes) instead of
     * re-reading the cache hierarchy at drain time -- a drain-time
     * read races in-transit copies (an L1 writeback or an L2 eviction
     * recall holds the only fresh bytes in a mesh packet or a
     * split-phase round, and every array then serves a stale copy).
     * Call @p done once the entry is accepted (possibly stalling on a
     * full combine buffer). @p bytes is only valid during the call.
     */
    virtual void onStore(CoreId core, Addr addr, const Line &pre,
                         std::uint32_t off, const std::uint8_t *bytes,
                         std::uint32_t size, CacheCallback done) = 0;
};

/** One private L1 data cache. */
class L1Cache : public MeshSink
{
  public:
    using Callback = CacheCallback;

    L1Cache(CoreId core, EventQueue &eq, const SystemConfig &cfg,
            Mesh &mesh, const AddressMap &amap,
            std::vector<std::unique_ptr<L2Tile>> &tiles, StatSet &stats);
    ~L1Cache();

    CoreId coreId() const { return _core; }

    /** Install the design's store logger (nullptr for NON-ATOMIC). */
    void setStoreLogger(StoreLogger *logger) { _logger = logger; }

    // --- Core-facing operations ---------------------------------------

    /**
     * Load from the line of @p addr; @p done runs when data is
     * available to the core.
     */
    void load(Addr addr, Callback done);

    /**
     * Store @p size bytes (@p bytes) at @p addr (single line only).
     * Runs the full protocol: obtain write permission, consult the
     * store logger, apply, set dirty/log bits, then @p done.
     */
    void store(Addr addr, const std::uint8_t *bytes, std::uint32_t size,
               Callback done);

    /**
     * Durable flush of the line of @p addr (clwb-like): pushes the
     * dirty copy toward NVM and acks when durable. Clears the log bit
     * and the dirty bit; the line stays valid.
     */
    void flush(Addr addr, Callback done);

    // --- Mesh delivery (fills, acks, inbound protocol legs) -----------

    void meshDeliver(Packet &pkt) override;

    /** Power failure: everything volatile vanishes. */
    void powerFail();

    // --- Introspection -------------------------------------------------
    const CacheArray &array() const { return _array; }
    CacheArray &arrayForTest() { return _array; }
    std::size_t outstandingMisses() const { return _mshrs.active(); }
    const MshrTable &mshrs() const { return _mshrs; }

    /** PendingStore slots ever allocated (pool high-water mark). */
    std::size_t storePoolAllocated() const
    {
        return _storePool.allocated();
    }

    /** PendingStore slots currently idle (pool reuse proof). */
    std::size_t storePoolFree() const { return _storePool.idle(); }

    /** Writeback-buffer entries ever allocated (pool high-water). */
    std::size_t wbPoolAllocated() const { return _wbPool.allocated(); }

    /** Writeback-buffer entries currently idle (pool reuse proof). */
    std::size_t wbPoolFree() const { return _wbPool.idle(); }

    /** PutM writebacks currently awaiting their WbAck. */
    std::size_t outstandingWritebacks() const { return _wbCount; }

  private:
    /**
     * In-flight state of one store, pooled and reused: the payload
     * bytes, the core's completion, and (implicitly, by being pointed
     * at from MSHR waiters / logger acks) the store's continuation.
     * Live slots are additionally chained into _storeActive so a power
     * failure can reclaim stores whose continuations died with the
     * MSHRs.
     */
    struct PendingStore
    {
        PendingStore *next = nullptr;       //!< pool free-list link
        PendingStore *activeNext = nullptr; //!< in-flight list link
        Addr addr = 0;
        std::uint32_t size = 0;
        std::array<std::uint8_t, kLineBytes> bytes{};
        Callback done;
    };

    /** One outstanding flush, parked until its FlushAck returns. */
    struct PendingFlush
    {
        PendingFlush *next = nullptr;
        Addr line = 0;
        Callback done;
    };

    /**
     * One dirty eviction in flight: the line's data parks here while
     * the PutM travels to the home tile, and the entry frees when the
     * WbAck returns. A Recall / FwdGetX that crosses the PutM in the
     * mesh is answered from this buffer (the home then drops the stale
     * PutM by its directory owner check).
     */
    struct PendingPutM
    {
        PendingPutM *next = nullptr;
        Addr line = 0;
        Line data{};
    };

    void after(Cycles delay, EventQueue::Callback fn);

    // --- Inbound protocol legs (mesh-delivered) -----------------------

    /** Home invalidates our (shared) copy; ack back home. */
    void handleInv(Addr line);

    /** Home recalls the line (inclusion eviction / flush): surrender
     * our copy -- from the array or the writeback buffer -- and reply
     * with a RecallAck carrying whatever we had. */
    void handleRecall(Addr line);

    /** Forwarded read: downgrade to Shared and ship our copy home
     * (FwdAckS); the home grants @p requester. */
    void handleFwdGetS(CoreId requester, Addr line);

    /** Forwarded write: once unpinned, surrender the line home
     * (FwdAckX); the home grants @p requester Modified. */
    void handleFwdGetX(CoreId requester, Addr line);

    /** WbAck from the home: free the oldest matching writeback-buffer
     * entry. */
    void wbAcked(Addr line);

    /**
     * Run @p action once the line is not pinned by an outstanding log
     * request (immediately if unpinned). A real cache controller NACKs
     * or defers incoming forwards/invalidations for a line with an
     * active store-logging transaction; stealing the line mid-wait
     * would force a refetch + duplicate log entry on every theft --
     * on contended lines that convoy livelocks the update.
     */
    void whenUnpinned(Addr addr, Callback action);

    /** M/E -> I; returns the data (and dirtiness) if present in the
     * array, else the newest writeback-buffer copy, else nothing. */
    std::optional<std::pair<Line, bool>> surrenderLine(Addr addr);

    /** Any -> I (invalidation; no data transfer). */
    void invalidateLine(Addr addr);

    std::uint32_t homeTileOf(Addr addr) const;
    std::uint32_t myNode() const;

    /** Begin a miss (GetS/GetX/Upgrade); merges into an existing MSHR. */
    void startMiss(Addr addr, bool exclusive,
                   MshrTable::Continuation retry);

    /** Fill arrived: install (evicting as needed) and wake waiters. */
    void fillArrived(Addr addr, const FillResult &result);

    /** FlushAck arrived: resume the oldest flush of this line. */
    void flushAcked(Addr line);

    /** Evict a victim frame to make room (dirty -> PutM). */
    void evictFrame(CacheLineState *frame);

    /** Store protocol once the L1 access latency has elapsed; re-run
     * on retry after a miss fill or a lost race. */
    void finishStore(PendingStore *ps);

    /** Log ack for @p ps's line: unpin, apply, release deferred
     * coherence actions. */
    void storeLogged(PendingStore *ps);

    /** Write the bytes, set dirty/log bits, complete and recycle. */
    void applyStore(PendingStore *ps, bool set_log_bit);

    PendingStore *acquireStore();
    void releaseStore(PendingStore *ps);
    PendingFlush *acquireFlush();
    void releaseFlush(PendingFlush *pf);

    /** Newest in-flight writeback of @p line (nullptr if none). */
    PendingPutM *findWb(Addr line);

    CoreId _core;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    Mesh &_mesh;
    const AddressMap &_amap;
    std::vector<std::unique_ptr<L2Tile>> &_tiles;

    CacheArray _array;
    MshrTable _mshrs;
    StoreLogger *_logger = nullptr;
    /** Deferred coherence actions on pinned lines (see whenUnpinned). */
    std::unordered_map<Addr, std::vector<Callback>> _unpinWaiters;

    FreeListPool<PendingStore> _storePool;
    PendingStore *_storeActive = nullptr;  //!< in-flight stores
    /** Bumped on powerFail: continuations holding a PendingStore
     * pointer carry their epoch and go inert when it goes stale, so a
     * queue pumped after a crash can never touch a recycled slot
     * (same pattern as the memory controller's completion epoch). */
    std::uint64_t _epoch = 0;
    FreeListPool<PendingFlush> _flushPool;
    PendingFlush *_flushHead = nullptr;  //!< outstanding flushes (FIFO)
    PendingFlush *_flushTail = nullptr;
    FreeListPool<PendingPutM> _wbPool;
    PendingPutM *_wbHead = nullptr;  //!< in-flight writebacks (FIFO)
    PendingPutM *_wbTail = nullptr;
    std::size_t _wbCount = 0;

    Counter &_statLoads;
    Counter &_statStores;
    Counter &_statLoadMisses;
    Counter &_statStoreMisses;
    Counter &_statWritebacks;
    Counter &_statLogRequests;
    Counter &_statWbHits;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_L1_CACHE_HH
