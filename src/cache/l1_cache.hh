/**
 * @file
 * Private per-core L1 data cache with the ATOM LogI hook.
 *
 * The L1 services the core's loads, stores and flushes. Stores inside
 * an atomic region consult the installed StoreLogger (the ATOM LogI
 * module or the REDO front end) before modifying a line, implementing
 * Invariant 1: a store does not complete until its undo entry exists.
 */

#ifndef ATOMSIM_CACHE_L1_CACHE_HH
#define ATOMSIM_CACHE_L1_CACHE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/mshr.hh"
#include "mem/address_map.hh"
#include "net/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{

class L2Tile;
struct FillResult;

/**
 * Hook consulted on the store path. Implemented by the ATOM LogI
 * module (undo designs) and by the REDO write-combining front end.
 */
class StoreLogger
{
  public:
    virtual ~StoreLogger() = default;

    /** What kind of logging the active design performs. */
    enum class Mode
    {
        None,  //!< NON-ATOMIC: no logging
        Undo,  //!< BASE / ATOM / ATOM-OPT: log first write per line
        Redo,  //!< REDO: log every store
    };

    virtual Mode mode() const = 0;

    /** True while @p core executes inside an atomic region. */
    virtual bool inAtomic(CoreId core) const = 0;

    /**
     * Undo designs: the first write to @p addr in this atomic update.
     * @p old_value is the pre-store line. Call @p done once the store
     * may modify the cache (Invariant 1); the L1 then sets the log bit.
     */
    virtual void onFirstWrite(CoreId core, Addr addr,
                              const Line &old_value,
                              std::function<void()> done) = 0;

    /**
     * REDO: every store produces a redo entry. Call @p done once the
     * entry is accepted (possibly stalling on a full combine buffer).
     */
    virtual void onStore(CoreId core, Addr addr,
                         std::function<void()> done) = 0;
};

/** One private L1 data cache. */
class L1Cache
{
  public:
    using Callback = std::function<void()>;

    L1Cache(CoreId core, EventQueue &eq, const SystemConfig &cfg,
            Mesh &mesh, const AddressMap &amap,
            std::vector<std::unique_ptr<L2Tile>> &tiles, StatSet &stats);

    CoreId coreId() const { return _core; }

    /** Install the design's store logger (nullptr for NON-ATOMIC). */
    void setStoreLogger(StoreLogger *logger) { _logger = logger; }

    // --- Core-facing operations ---------------------------------------

    /**
     * Load from the line of @p addr; @p done runs when data is
     * available to the core.
     */
    void load(Addr addr, Callback done);

    /**
     * Store @p size bytes (@p bytes) at @p addr (single line only).
     * Runs the full protocol: obtain write permission, consult the
     * store logger, apply, set dirty/log bits, then @p done.
     */
    void store(Addr addr, const std::uint8_t *bytes, std::uint32_t size,
               Callback done);

    /**
     * Durable flush of the line of @p addr (clwb-like): pushes the
     * dirty copy toward NVM and acks when durable. Clears the log bit
     * and the dirty bit; the line stays valid.
     */
    void flush(Addr addr, Callback done);

    // --- Home-tile-facing operations (synchronous state changes) ------

    /** M/E -> I; returns the data (and dirtiness) if present. */
    std::optional<std::pair<Line, bool>> surrenderLine(Addr addr);

    /**
     * Run @p action once the line is not pinned by an outstanding log
     * request (immediately if unpinned). A real cache controller NACKs
     * or defers incoming forwards/invalidations for a line with an
     * active store-logging transaction; stealing the line mid-wait
     * would force a refetch + duplicate log entry on every theft --
     * on contended lines that convoy livelocks the update.
     */
    void whenUnpinned(Addr addr, Callback action);

    /** M/E -> S; returns dirty data if it must update the L2 copy. */
    std::optional<Line> downgradeLine(Addr addr);

    /** Any -> I (invalidation; no data transfer). */
    void invalidateLine(Addr addr);

    /** Power failure: everything volatile vanishes. */
    void powerFail();

    // --- Introspection -------------------------------------------------
    const CacheArray &array() const { return _array; }
    CacheArray &arrayForTest() { return _array; }
    std::size_t outstandingMisses() const { return _mshrs.active(); }

  private:
    void after(Cycles delay, std::function<void()> fn);

    std::uint32_t homeTileOf(Addr addr) const;
    std::uint32_t myNode() const;

    /** Begin a miss (GetS/GetX/Upgrade); merges into an existing MSHR. */
    void startMiss(Addr addr, bool exclusive, Callback retry);

    /** Fill arrived: install (evicting as needed) and wake waiters. */
    void fillArrived(Addr addr, const FillResult &result);

    /** Evict a victim frame to make room (dirty -> PutM). */
    void evictFrame(CacheLineState *frame);

    /** Store continuation once the line is writable. */
    void finishStore(Addr addr, const std::uint8_t *bytes,
                     std::uint32_t size, Callback done);

    CoreId _core;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    Mesh &_mesh;
    const AddressMap &_amap;
    std::vector<std::unique_ptr<L2Tile>> &_tiles;

    CacheArray _array;
    MshrTable _mshrs;
    StoreLogger *_logger = nullptr;
    /** Deferred coherence actions on pinned lines (see whenUnpinned). */
    std::unordered_map<Addr, std::vector<Callback>> _unpinWaiters;

    Counter &_statLoads;
    Counter &_statStores;
    Counter &_statLoadMisses;
    Counter &_statStoreMisses;
    Counter &_statWritebacks;
    Counter &_statLogRequests;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_L1_CACHE_HH
