/**
 * @file
 * Set-associative tag/data array with LRU replacement.
 */

#ifndef ATOMSIM_CACHE_CACHE_ARRAY_HH
#define ATOMSIM_CACHE_CACHE_ARRAY_HH

#include <cstdint>
#include <vector>

#include "cache/cache_line.hh"
#include "sim/types.hh"

namespace atomsim
{

/**
 * A set-associative array of CacheLineState with true-LRU replacement.
 *
 * The array indexes by line address; set index bits come right above
 * the line offset. Size and associativity must describe a power-of-two
 * set count.
 */
class CacheArray
{
  public:
    /**
     * @param index_div divisor applied to the line number before set
     *        indexing. Banked caches whose bank-selection bits are the
     *        low line-number bits (the L2 tiles) must pass the bank
     *        count here, otherwise only numSets/index_div sets would
     *        ever be used.
     */
    CacheArray(std::uint32_t size_bytes, std::uint32_t assoc,
               std::uint32_t index_div = 1);

    /** Lookup without LRU update. nullptr on miss. */
    CacheLineState *find(Addr line_addr);
    const CacheLineState *find(Addr line_addr) const;

    /** Lookup and mark most-recently used. nullptr on miss. */
    CacheLineState *touch(Addr line_addr);

    /**
     * Choose a victim frame in the set of @p line_addr: an invalid
     * frame if available, else the LRU frame. Never returns nullptr.
     * The caller is responsible for evicting the current occupant.
     */
    CacheLineState *victim(Addr line_addr);

    /**
     * Install @p line_addr in @p frame (which must come from victim()
     * of the same set). Resets all metadata.
     */
    void install(CacheLineState *frame, Addr line_addr);

    std::uint32_t numSets() const { return _numSets; }
    std::uint32_t assoc() const { return _assoc; }

    /** Iterate all valid lines (tests, crash handling, flush walks). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &frame : _frames) {
            if (frame.valid)
                fn(frame);
        }
    }

    /** Invalidate every line (power failure). */
    void invalidateAll();

  private:
    std::uint32_t setIndex(Addr line_addr) const;

    std::uint32_t _numSets;
    std::uint32_t _assoc;
    std::uint32_t _indexDiv;
    std::uint64_t _stamp = 0;
    std::vector<CacheLineState> _frames;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_CACHE_ARRAY_HH
