/**
 * @file
 * One tile of the banked, shared, inclusive L2 cache.
 *
 * Each tile is the home node of the lines that hash to it and runs the
 * directory protocol for them: GetS / GetX / Upgrade requests from L1s,
 * synchronous PutM writebacks, durable flushes to the memory
 * controller, and recalls on inclusion-victim eviction.
 *
 * Protocol note (see DESIGN.md): coherence *state* transitions are
 * applied synchronously inside delivered events while message latencies
 * shape request completion times; combined with per-line busy
 * serialization this makes the protocol race-free by construction.
 *
 * The tile is a MeshSink: requests, forwards, invalidation acks and
 * memory fills all arrive as typed packets, and responses leave as
 * typed packets addressed to the requesting L1 (or this tile itself,
 * for protocol legs that logically execute at a remote node). Fan-in
 * joins (invalidation acks) are tracked in pooled InvJoin records
 * keyed by line -- no closures, no allocation in steady state.
 */

#ifndef ATOMSIM_CACHE_L2_CACHE_HH
#define ATOMSIM_CACHE_L2_CACHE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/directory.hh"
#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "mem/packet.hh"
#include "mem/phys_mem.hh"
#include "net/mesh.hh"
#include "sim/callback.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"

namespace atomsim
{

class L1Cache;

/**
 * Interface the ATOM LogM implements for the source-logging
 * optimization (Section III-D): log a read-exclusive fill at the
 * memory controller, using the just-read line as the undo value.
 */
class SourceLogger
{
  public:
    virtual ~SourceLogger() = default;

    /**
     * Attempt to source-log the fill of @p addr for @p core.
     * @retval true the entry was logged; return the data with the log
     *              bit set (DataLogged).
     */
    virtual bool sourceLogFill(CoreId core, Addr addr,
                               const Line &old_value) = 0;
};

/**
 * Infinite victim cache used by the REDO design (Doshi et al.): dirty
 * L2 evictions park here instead of spilling to NVM, because in-place
 * NVM data must not be overwritten before the backend applies the log.
 */
class VictimCache
{
  public:
    void
    put(Addr line_addr, const Line &data)
    {
        _lines[lineAlign(line_addr)] = data;
    }

    const Line *
    find(Addr line_addr) const
    {
        auto it = _lines.find(lineAlign(line_addr));
        return it == _lines.end() ? nullptr : &it->second;
    }

    std::size_t size() const { return _lines.size(); }
    void clear() { _lines.clear(); }

  private:
    std::unordered_map<Addr, Line> _lines;
};

/** Result of a fill request, delivered back to the requesting L1. */
struct FillResult
{
    Line data;
    CoherenceState grant;
    bool logged;  //!< log bit pre-set by source logging
};

/** One L2 tile (home node + directory + data bank). */
class L2Tile : public MeshSink
{
  public:
    /** Durable-write completion; same capacity as a packet's rider so
     * it moves through the mesh without re-wrapping. */
    using AckCallback = MeshCallback;

    L2Tile(std::uint32_t tile_id, EventQueue &eq, const SystemConfig &cfg,
           Mesh &mesh, const AddressMap &amap, StatSet &stats);
    ~L2Tile();

    /** Wire the L1s (for recalls / forwards / invalidations). */
    void setL1s(std::vector<L1Cache *> l1s) { _l1s = std::move(l1s); }

    /** Wire the per-MC mesh ports (fill reads, durable writes). */
    void
    setMcPorts(std::vector<MeshSink *> ports)
    {
        _mcPorts = std::move(ports);
    }

    /** Wire the shared victim cache (REDO only; else nullptr). */
    void setVictimCache(VictimCache *vc) { _victims = vc; }

    std::uint32_t tileId() const { return _tileId; }

    // --- Mesh delivery -------------------------------------------------

    void meshDeliver(Packet &pkt) override;

    // --- Handlers invoked at this tile (already mesh-delivered) -------

    /** Load miss from @p core. Responds with a typed Data packet. */
    void handleGetS(CoreId core, Addr addr);

    /**
     * Store miss from @p core. @p in_atomic enables source logging at
     * the memory controller when the fill reaches it.
     */
    void handleGetX(CoreId core, Addr addr, bool in_atomic);

    /** S->M upgrade; may morph into a data grant if state moved on. */
    void handleUpgrade(CoreId core, Addr addr, bool in_atomic);

    /**
     * Dirty writeback from an L1. State applies synchronously (see file
     * header); the caller separately charges network bandwidth.
     */
    void putMSync(CoreId core, Addr addr, const Line &data);

    /**
     * Durable flush (clwb-like). @p has_data carries the L1's dirty
     * copy if it had one. Sends a FlushAck to @p core's L1 once the
     * line is durable in NVM.
     */
    void handleFlush(CoreId core, Addr addr, bool has_data,
                     const Line &data);

    /** Power failure: all cached state vanishes. */
    void powerFail();

    /** Tests: direct visibility into the tile. */
    const CacheArray &array() const { return _array; }
    Directory &directory() { return _dir; }

  private:
    /** Pooled fan-in record for an invalidation round. */
    struct InvJoin
    {
        InvJoin *next = nullptr;
        Addr line = 0;
        CoreId requester = 0;
        std::uint32_t remaining = 0;
    };

    void after(Cycles delay, EventQueue::Callback fn);

    /** Respond to a requester core through the mesh. */
    void respondFill(CoreId core, Addr line, MsgType type,
                     const FillResult &result);

    /** FlushAck back to the flushing core's L1. */
    void sendFlushAck(CoreId core, Addr line);

    /** Read the line from NVM (or victim cache); the fill resumes in
     * onMemFill(). */
    void missToMemory(CoreId core, Addr addr, bool exclusive,
                      bool in_atomic);

    /** Memory fill arrived: install, update the directory, grant. */
    void onMemFill(CoreId core, Addr addr, const Line &data, bool logged,
                   bool exclusive);

    // Protocol legs executing at remote nodes (typed to this tile).
    void onFwdGetS(CoreId requester, Addr line, CoreId owner);
    void onFwdGetX(CoreId requester, Addr line, CoreId owner);
    void onInv(Addr line, CoreId target);
    void onInvAck(Addr line);

    /** Invalidate every sharer in @p mask, granting to @p requester
     * once all acks return (immediately if the mask is empty). */
    void invalidateSharers(CoreId requester, Addr line,
                           std::uint64_t mask);

    /** Grant Modified to @p requester from the L2 copy and release. */
    void grantExclusive(CoreId requester, Addr line);

    /**
     * Install @p addr with @p data into the array, evicting (and
     * recalling) a victim if necessary.
     */
    CacheLineState *insertLine(Addr addr, const Line &data, bool dirty);

    /** Pull the freshest copy back from the owner, if any (sync). */
    void recallOwner(Addr addr, DirEntry &dir, CacheLineState *frame);

    /** Issue a durable data write for @p addr to its MC. */
    void writeThrough(Addr addr, const Line &data, WriteKind kind,
                      AckCallback on_durable);

    std::uint32_t _tileId;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    Mesh &_mesh;
    const AddressMap &_amap;
    StatSet &_stats;

    CacheArray _array;
    Directory _dir;
    std::vector<L1Cache *> _l1s;
    std::vector<MeshSink *> _mcPorts;
    VictimCache *_victims = nullptr;

    FreeListPool<InvJoin> _joinPool;
    InvJoin *_joinActive = nullptr;

    Counter &_statHits;
    Counter &_statMisses;
    Counter &_statRecalls;
    Counter &_statEvictions;
    Counter &_statVictimHits;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_L2_CACHE_HH
