/**
 * @file
 * One tile of the banked, shared, inclusive L2 cache.
 *
 * Each tile is the home node of the lines that hash to it and runs the
 * directory protocol for them: GetS / GetX / Upgrade requests from L1s,
 * synchronous PutM writebacks, durable flushes to the memory
 * controller, and recalls on inclusion-victim eviction.
 *
 * Protocol note (see DESIGN.md): coherence *state* transitions are
 * applied synchronously inside delivered events while message latencies
 * shape request completion times; combined with per-line busy
 * serialization this makes the protocol race-free by construction.
 */

#ifndef ATOMSIM_CACHE_L2_CACHE_HH
#define ATOMSIM_CACHE_L2_CACHE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/directory.hh"
#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "mem/phys_mem.hh"
#include "net/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace atomsim
{

class L1Cache;

/**
 * Interface the ATOM LogM implements for the source-logging
 * optimization (Section III-D): log a read-exclusive fill at the
 * memory controller, using the just-read line as the undo value.
 */
class SourceLogger
{
  public:
    virtual ~SourceLogger() = default;

    /**
     * Attempt to source-log the fill of @p addr for @p core.
     * @retval true the entry was logged; return the data with the log
     *              bit set (DataLogged).
     */
    virtual bool sourceLogFill(CoreId core, Addr addr,
                               const Line &old_value) = 0;
};

/**
 * Infinite victim cache used by the REDO design (Doshi et al.): dirty
 * L2 evictions park here instead of spilling to NVM, because in-place
 * NVM data must not be overwritten before the backend applies the log.
 */
class VictimCache
{
  public:
    void
    put(Addr line_addr, const Line &data)
    {
        _lines[lineAlign(line_addr)] = data;
    }

    const Line *
    find(Addr line_addr) const
    {
        auto it = _lines.find(lineAlign(line_addr));
        return it == _lines.end() ? nullptr : &it->second;
    }

    std::size_t size() const { return _lines.size(); }
    void clear() { _lines.clear(); }

  private:
    std::unordered_map<Addr, Line> _lines;
};

/** Result of a fill request, delivered back to the requesting L1. */
struct FillResult
{
    Line data;
    CoherenceState grant;
    bool logged;  //!< log bit pre-set by source logging
};

/** One L2 tile (home node + directory + data bank). */
class L2Tile
{
  public:
    using FillCallback = std::function<void(const FillResult &)>;
    using AckCallback = std::function<void()>;

    L2Tile(std::uint32_t tile_id, EventQueue &eq, const SystemConfig &cfg,
           Mesh &mesh, const AddressMap &amap,
           std::vector<std::unique_ptr<MemoryController>> &mcs,
           StatSet &stats);

    /** Wire the L1s (for recalls / forwards / invalidations). */
    void setL1s(std::vector<L1Cache *> l1s) { _l1s = std::move(l1s); }

    /** Wire per-MC source loggers (ATOM-OPT only; else nullptrs). */
    void
    setSourceLoggers(std::vector<SourceLogger *> loggers)
    {
        _sourceLoggers = std::move(loggers);
    }

    /** Wire the shared victim cache (REDO only; else nullptr). */
    void setVictimCache(VictimCache *vc) { _victims = vc; }

    std::uint32_t tileId() const { return _tileId; }

    // --- Handlers invoked at this tile (already mesh-delivered) -------

    /** Load miss from @p core. */
    void handleGetS(CoreId core, Addr addr, FillCallback respond);

    /**
     * Store miss from @p core. @p in_atomic enables source logging at
     * the memory controller when the fill reaches it.
     */
    void handleGetX(CoreId core, Addr addr, bool in_atomic,
                    FillCallback respond);

    /** S->M upgrade; may morph into a data grant if state moved on. */
    void handleUpgrade(CoreId core, Addr addr, bool in_atomic,
                       FillCallback respond);

    /**
     * Dirty writeback from an L1. State applies synchronously (see file
     * header); the caller separately charges network bandwidth.
     */
    void putMSync(CoreId core, Addr addr, const Line &data);

    /**
     * Durable flush (clwb-like). @p has_data carries the L1's dirty
     * copy if it had one. Acks once the line is durable in NVM.
     */
    void handleFlush(CoreId core, Addr addr, bool has_data,
                     const Line &data, AckCallback respond);

    /** Power failure: all cached state vanishes. */
    void powerFail();

    /** Tests: direct visibility into the tile. */
    const CacheArray &array() const { return _array; }
    Directory &directory() { return _dir; }

  private:
    void after(Cycles delay, std::function<void()> fn);

    /** Respond to a requester core through the mesh. */
    void respondFill(CoreId core, MsgType type, FillResult result,
                     FillCallback respond);

    /** Read the line from NVM (or victim cache), then continue. */
    void missToMemory(CoreId core, Addr addr, bool exclusive,
                      bool in_atomic,
                      std::function<void(const Line &, bool logged)> k);

    /**
     * Install @p addr with @p data into the array, evicting (and
     * recalling) a victim if necessary.
     */
    CacheLineState *insertLine(Addr addr, const Line &data, bool dirty);

    /** Pull the freshest copy back from the owner, if any (sync). */
    void recallOwner(Addr addr, DirEntry &dir, CacheLineState *frame);

    /** Issue a durable data write for @p addr to its MC. */
    void writeThrough(Addr addr, const Line &data, WriteKind kind,
                      AckCallback on_durable);

    std::uint32_t _tileId;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    Mesh &_mesh;
    const AddressMap &_amap;
    std::vector<std::unique_ptr<MemoryController>> &_mcs;
    StatSet &_stats;

    CacheArray _array;
    Directory _dir;
    std::vector<L1Cache *> _l1s;
    std::vector<SourceLogger *> _sourceLoggers;
    VictimCache *_victims = nullptr;

    Counter &_statHits;
    Counter &_statMisses;
    Counter &_statRecalls;
    Counter &_statEvictions;
    Counter &_statVictimHits;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_L2_CACHE_HH
