/**
 * @file
 * One tile of the banked, shared, inclusive L2 cache.
 *
 * Each tile is the home node of the lines that hash to it and runs the
 * directory protocol for them: GetS / GetX / Upgrade requests from L1s,
 * PutM writebacks, durable flushes to the memory controller, and
 * recalls on inclusion-victim eviction.
 *
 * Every L1<->L2 protocol leg is a *split-phase mesh transaction*: the
 * tile never calls into an L1 (and vice versa); it sends a typed
 * packet (Recall / Inv / FwdGetS / FwdGetX / WbAck) and the L1 answers
 * with another (RecallAck / InvAck / FwdAckS / FwdAckX / PutM). That
 * is what allows each L2 tile -- and each core+L1 pair -- to run as
 * its own simulation domain in sharded mode (sim/shard.hh).
 * Per-line busy serialization at the directory still makes the
 * protocol race-free: a line with an in-flight recall/invalidation
 * round or forward keeps its busy bit until the acks return.
 *
 * Ordering invariant: *every* grant (fill response) and *every*
 * revocation (Inv / Recall / FwdGet*) of a line travels on the single
 * home-tile -> L1 node pair, whose point-to-point FIFO the mesh
 * guarantees (per-link and ejection-port reservations). A revocation
 * therefore can never overtake an in-flight grant -- the reason
 * forwarded data returns home before the requester is granted,
 * rather than going owner -> requester directly.
 *
 * Fan-in rounds (a victim's recall + sharer invalidations, a flush's
 * owner recall, a GetX's invalidation set) are tracked in pooled Round
 * records keyed by line; a fill whose victim is mid-recall parks in a
 * pooled PendingFill -- no closures, no allocation in steady state.
 *
 * Writeback races resolve by ownership: a PutM that arrives after the
 * home recalled or forwarded the line away (the L1 answered from its
 * writeback buffer) finds dir.owner != sender and is dropped; every
 * PutM is acknowledged with a WbAck so the L1 can free the buffer
 * slot.
 */

#ifndef ATOMSIM_CACHE_L2_CACHE_HH
#define ATOMSIM_CACHE_L2_CACHE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/directory.hh"
#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "mem/packet.hh"
#include "mem/phys_mem.hh"
#include "net/mesh.hh"
#include "sim/callback.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"

namespace atomsim
{

class L1Cache;

/**
 * Interface the ATOM LogM implements for the source-logging
 * optimization (Section III-D): log a read-exclusive fill at the
 * memory controller, using the just-read line as the undo value.
 */
class SourceLogger
{
  public:
    virtual ~SourceLogger() = default;

    /**
     * Attempt to source-log the fill of @p addr for @p core.
     * @retval true the entry was logged; return the data with the log
     *              bit set (DataLogged).
     */
    virtual bool sourceLogFill(CoreId core, Addr addr,
                               const Line &old_value) = 0;
};

/**
 * Infinite victim cache used by the REDO design (Doshi et al.): dirty
 * L2 evictions park here instead of spilling to NVM, because in-place
 * NVM data must not be overwritten before the backend applies the log.
 */
class VictimCache
{
  public:
    void
    put(Addr line_addr, const Line &data)
    {
        _lines[lineAlign(line_addr)] = data;
    }

    const Line *
    find(Addr line_addr) const
    {
        auto it = _lines.find(lineAlign(line_addr));
        return it == _lines.end() ? nullptr : &it->second;
    }

    std::size_t size() const { return _lines.size(); }
    void clear() { _lines.clear(); }

  private:
    std::unordered_map<Addr, Line> _lines;
};

/** Result of a fill request, delivered back to the requesting L1. */
struct FillResult
{
    Line data;
    CoherenceState grant;
    bool logged;  //!< log bit pre-set by source logging
};

/** One L2 tile (home node + directory + data bank). */
class L2Tile : public MeshSink
{
  public:
    /** Durable-write completion; same capacity as a packet's rider so
     * it moves through the mesh without re-wrapping. */
    using AckCallback = MeshCallback;

    L2Tile(std::uint32_t tile_id, EventQueue &eq, const SystemConfig &cfg,
           Mesh &mesh, const AddressMap &amap, StatSet &stats);
    ~L2Tile();

    /** Wire the L1s (for recalls / forwards / invalidations). */
    void setL1s(std::vector<L1Cache *> l1s) { _l1s = std::move(l1s); }

    /** Wire the per-MC mesh ports (fill reads, durable writes). */
    void
    setMcPorts(std::vector<MeshSink *> ports)
    {
        _mcPorts = std::move(ports);
    }

    /** Wire the shared victim cache (REDO only; else nullptr). */
    void setVictimCache(VictimCache *vc) { _victims = vc; }

    std::uint32_t tileId() const { return _tileId; }

    // --- Mesh delivery -------------------------------------------------

    void meshDeliver(Packet &pkt) override;

    // --- Handlers invoked at this tile (already mesh-delivered) -------

    /** Load miss from @p core. Responds with a typed Data packet. */
    void handleGetS(CoreId core, Addr addr);

    /**
     * Store miss from @p core. @p in_atomic enables source logging at
     * the memory controller when the fill reaches it.
     */
    void handleGetX(CoreId core, Addr addr, bool in_atomic);

    /** S->M upgrade; may morph into a data grant if state moved on. */
    void handleUpgrade(CoreId core, Addr addr, bool in_atomic);

    /**
     * Dirty writeback from an L1 (split-phase): apply if the sender is
     * still the tracked owner, drop as stale otherwise (a recall or
     * forward crossed it and already took the data), and WbAck the
     * sender either way.
     */
    void handlePutM(CoreId core, Addr addr, const Line &data);

    /**
     * Durable flush (clwb-like). @p has_data carries the L1's dirty
     * copy if it had one. Sends a FlushAck to @p core's L1 once the
     * line is durable in NVM.
     */
    void handleFlush(CoreId core, Addr addr, bool has_data,
                     const Line &data);

    /** Power failure: all cached state vanishes. */
    void powerFail();

    /** Tests: direct visibility into the tile. */
    const CacheArray &array() const { return _array; }
    Directory &directory() { return _dir; }

    /** Round records ever allocated (pool high-water). */
    std::size_t roundPoolAllocated() const { return _roundPool.allocated(); }
    /** Round records currently idle (pool reuse proof). */
    std::size_t roundPoolFree() const { return _roundPool.idle(); }
    /** Parked fills ever allocated (pool high-water). */
    std::size_t fillPoolAllocated() const { return _fillPool.allocated(); }
    /** Parked fills currently idle (pool reuse proof). */
    std::size_t fillPoolFree() const { return _fillPool.idle(); }

  private:
    /** Capacity of a round-completion continuation: the flush path's
     * this + core + line + flags + a 64-byte line. */
    static constexpr std::size_t kRoundCbBytes = 104;

    /**
     * Pooled fan-in record for one recall/invalidation round on one
     * line (the line is busy at the directory for the whole round, so
     * at most one round per line exists). Collects the recalled copy
     * and runs the continuation when the last ack lands.
     */
    struct Round
    {
        Round *next = nullptr;
        Addr line = 0;
        std::uint32_t remaining = 0;
        bool gotData = false;   //!< a RecallAck carried a copy
        bool gotDirty = false;  //!< ... and it was dirty
        Line data{};
        InplaceFunction<void(Round &), kRoundCbBytes> done;
    };

    using RoundCallback = InplaceFunction<void(Round &), kRoundCbBytes>;

    /**
     * A memory fill whose victim frame needs a split-phase eviction
     * (or whose set is transiently out of unpinned frames): parked
     * here until the frame is free to install into.
     */
    struct PendingFill
    {
        PendingFill *next = nullptr;        //!< pool / stall-list link
        PendingFill *activeNext = nullptr;  //!< in-flight list link
        CoreId core = 0;
        Addr line = 0;
        bool logged = false;
        bool exclusive = false;
        Line data{};
    };

    void after(Cycles delay, EventQueue::Callback fn);

    /** Respond to a requester core through the mesh. */
    void respondFill(CoreId core, Addr line, MsgType type,
                     const FillResult &result);

    /** FlushAck back to the flushing core's L1. */
    void sendFlushAck(CoreId core, Addr line);

    /** WbAck back to a PutM sender's L1. */
    void sendWbAck(CoreId core, Addr line);

    /** Read the line from NVM (or victim cache); the fill resumes in
     * onMemFill(). */
    void missToMemory(CoreId core, Addr addr, bool exclusive,
                      bool in_atomic);

    /** Memory fill arrived: find (or free up) a frame, install, update
     * the directory, grant. May park the fill behind a split-phase
     * victim eviction. */
    void onMemFill(CoreId core, Addr addr, const Line &data, bool logged,
                   bool exclusive);

    /** Install the fill into @p frame, grant, and release the line. */
    void finishFill(CacheLineState *frame, CoreId core, Addr line,
                    const Line &data, bool logged, bool exclusive);

    // Home-side completions of the split-phase forward legs.
    void onFwdAckS(const Packet &pkt);
    void onFwdAckX(const Packet &pkt);

    /**
     * Start a recall/invalidation round on @p line: a Recall to
     * @p owner (if any) plus an Inv to every core in @p sharers.
     * @p done runs when the last ack lands -- immediately, with an
     * empty scratch Round, if there is nothing to send.
     */
    void startRound(Addr line, CoreId owner, const SharerSet &sharers,
                    RoundCallback done);

    /** An InvAck / RecallAck landed: advance the line's round. */
    void roundAck(Addr line, bool has_data, bool dirty,
                  const Line &data);

    /**
     * Split-phase eviction of @p frame's current occupant; installs
     * @p pf's fill and completes it when the victim's round finishes.
     */
    void evictThen(CacheLineState *frame, PendingFill *pf);

    /** Re-dispatch fills that were parked waiting for a frame. */
    void retryStalledFills();

    /** Invalidate every sharer in @p mask, granting to @p requester
     * once all acks return (immediately if the mask is empty). */
    void invalidateSharers(CoreId requester, Addr line,
                           const SharerSet &mask);

    /** Grant Modified to @p requester from the L2 copy and release. */
    void grantExclusive(CoreId requester, Addr line);

    /** The flush decision once any owner recall completed. */
    void finishFlush(CoreId core, Addr line, bool has_data,
                     const Line &data, bool owner_recalled);

    /** Issue a durable data write for @p addr to its MC. */
    void writeThrough(Addr addr, const Line &data, WriteKind kind,
                      AckCallback on_durable);

    PendingFill *acquireFill();
    void releaseFill(PendingFill *pf);

    std::uint32_t _tileId;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    Mesh &_mesh;
    const AddressMap &_amap;
    StatSet &_stats;

    CacheArray _array;
    Directory _dir;
    std::vector<L1Cache *> _l1s;
    std::vector<MeshSink *> _mcPorts;
    VictimCache *_victims = nullptr;

    FreeListPool<Round> _roundPool;
    Round *_roundActive = nullptr;
    FreeListPool<PendingFill> _fillPool;
    PendingFill *_fillActive = nullptr;  //!< every live PendingFill
    PendingFill *_stallHead = nullptr;   //!< fills waiting for a frame
    PendingFill *_stallTail = nullptr;

    Counter &_statHits;
    Counter &_statMisses;
    Counter &_statRecalls;
    Counter &_statEvictions;
    Counter &_statVictimHits;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_L2_CACHE_HH
