/**
 * @file
 * Directory state for the banked shared L2.
 *
 * Each L2 tile is the home node for the lines that map to it and keeps,
 * per resident line, the owning L1 (Modified/Exclusive holder) and a
 * sharer bitmask. A per-line busy flag serializes coherence
 * transactions; queued requests run in arrival order.
 *
 * Transaction waiters are fixed-capacity continuations in pooled
 * intrusive nodes (no allocation in steady state), and the per-line
 * control blocks are cached across acquire/release cycles so contending
 * on a hot line does not churn the map. The idle cache is capped
 * (kMaxIdleCtl): past it, released control blocks are erased instead,
 * trading per-transaction map churn on cold lines for bounded memory
 * on huge footprints.
 */

#ifndef ATOMSIM_CACHE_DIRECTORY_HH
#define ATOMSIM_CACHE_DIRECTORY_HH

#include <cstdint>
#include <unordered_map>

#include "sim/callback.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/** Sentinel: no owning core. */
constexpr CoreId kNoCore = ~CoreId(0);

/** Directory entry for one line homed at a tile. */
struct DirEntry
{
    /** L1 holding the line Exclusive/Modified, or kNoCore. */
    CoreId owner = kNoCore;
    /** Bitmask of L1s that may hold the line Shared (may be stale:
     * clean lines drop silently; spurious invalidations are no-ops). */
    std::uint64_t sharers = 0;

    bool
    anySharerBut(CoreId core) const
    {
        return (sharers & ~(std::uint64_t(1) << core)) != 0;
    }
};

/** Per-line transaction serialization + directory entries. */
class Directory
{
  public:
    /** Inline capacity of a queued transaction: the flush handler's
     * this + addr + flags + a 64-byte line. */
    static constexpr std::size_t kTxnBytes = 104;
    using Txn = InplaceCallback<kTxnBytes>;

    /** Idle control blocks cached across transactions; covers any hot
     * working set while bounding memory on huge footprints. */
    static constexpr std::size_t kMaxIdleCtl = 64 * 1024;

    /**
     * Publish the live control-block high-water mark into @p live_hw
     * (stat "dirN.ctrl_blocks_live"). Live = busy + cached-idle blocks;
     * the cap above bounds it near kMaxIdleCtl, which this stat makes
     * observable (ROADMAP: watch it as L2 working sets grow).
     */
    void attachStats(Counter *live_hw) { _liveHw = live_hw; }

    /** Current live control blocks (tests). */
    std::size_t liveCtl() const { return _ctl.size(); }

    /** Directory entry for @p line_addr (created on demand). */
    DirEntry &entry(Addr line_addr);

    /** Drop the entry (line evicted from L2). */
    void erase(Addr line_addr);

    /**
     * Run @p txn when the line's busy slot frees (immediately if free).
     * The transaction must call release() exactly once when done.
     */
    void acquire(Addr line_addr, Txn txn);

    /** Finish the current transaction; starts the next queued one. */
    void release(Addr line_addr);

    /** True if a transaction is active on the line. */
    bool busy(Addr line_addr) const;

    /** Power failure: all volatile directory state vanishes. */
    void clear();

  private:
    struct Waiter
    {
        Waiter *next = nullptr;
        Txn fn;
    };

    struct LineCtl
    {
        bool busy = false;
        Waiter *head = nullptr;
        Waiter *tail = nullptr;
    };

    void releaseWaiter(Waiter *w);

    std::unordered_map<Addr, DirEntry> _entries;
    /** Cached across acquire/release (busy=false when idle) so hot
     * lines don't churn map nodes; bounded by kMaxIdleCtl. */
    std::unordered_map<Addr, LineCtl> _ctl;
    std::size_t _idleCtl = 0;
    Counter *_liveHw = nullptr;  //!< optional occupancy high-water
    std::size_t _liveHwSeen = 0;

    FreeListPool<Waiter> _pool;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_DIRECTORY_HH
