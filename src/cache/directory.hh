/**
 * @file
 * Directory state for the banked shared L2.
 *
 * Each L2 tile is the home node for the lines that map to it and keeps,
 * per resident line, the owning L1 (Modified/Exclusive holder) and a
 * sharer bitmask. A per-line busy flag serializes coherence
 * transactions; queued requests run in arrival order.
 *
 * Transaction waiters are fixed-capacity continuations in pooled
 * intrusive nodes (no allocation in steady state), and the per-line
 * control blocks are cached across acquire/release cycles so contending
 * on a hot line does not churn the map. The idle cache is capped
 * (setIdleCap, scaled with the core count via idleCapFor): past it,
 * released control blocks are erased instead, trading per-transaction
 * map churn on cold lines for bounded memory on huge footprints.
 */

#ifndef ATOMSIM_CACHE_DIRECTORY_HH
#define ATOMSIM_CACHE_DIRECTORY_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/callback.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/** Sentinel: no owning core. */
constexpr CoreId kNoCore = ~CoreId(0);

/**
 * A set of sharing cores, scaled past 64.
 *
 * The historical representation was a bare uint64_t indexed by core
 * id, which shifts out of range (and would alias invalidations) on the
 * 256-/1024-core presets. Word 0 stays inline, so machines up to 64
 * cores keep the allocation-free fast path bit-for-bit; larger core
 * ids spill into heap words on first set().
 */
class SharerSet
{
  public:
    void
    set(CoreId core)
    {
        if (core < 64) {
            _w0 |= std::uint64_t(1) << core;
            return;
        }
        const std::size_t w = core / 64;
        if (_hi.size() < w)
            _hi.resize(w, 0);
        _hi[w - 1] |= std::uint64_t(1) << (core % 64);
    }

    /** Remove @p core (no-op when absent). */
    void
    clear(CoreId core)
    {
        if (core < 64) {
            _w0 &= ~(std::uint64_t(1) << core);
            return;
        }
        const std::size_t w = core / 64;
        if (w <= _hi.size())
            _hi[w - 1] &= ~(std::uint64_t(1) << (core % 64));
    }

    bool
    test(CoreId core) const
    {
        if (core < 64)
            return (_w0 >> core) & 1;
        const std::size_t w = core / 64;
        return w <= _hi.size() && ((_hi[w - 1] >> (core % 64)) & 1);
    }

    /** Empty the set (spilled capacity is kept for reuse). */
    void
    reset()
    {
        _w0 = 0;
        std::fill(_hi.begin(), _hi.end(), 0);
    }

    bool
    none() const
    {
        if (_w0)
            return false;
        for (std::uint64_t w : _hi)
            if (w)
                return false;
        return true;
    }

    std::uint32_t
    count() const
    {
        std::uint32_t n = std::uint32_t(__builtin_popcountll(_w0));
        for (std::uint64_t w : _hi)
            n += std::uint32_t(__builtin_popcountll(w));
        return n;
    }

    /** True when the set minus @p core is nonempty. */
    bool
    anyBut(CoreId core) const
    {
        return count() > (test(core) ? 1u : 0u);
    }

  private:
    std::uint64_t _w0 = 0;
    std::vector<std::uint64_t> _hi;  //!< words for cores >= 64
};

/** Directory entry for one line homed at a tile. */
struct DirEntry
{
    /** L1 holding the line Exclusive/Modified, or kNoCore. */
    CoreId owner = kNoCore;
    /** Cores that may hold the line Shared (may be stale:
     * clean lines drop silently; spurious invalidations are no-ops). */
    SharerSet sharers;

    bool
    anySharerBut(CoreId core) const
    {
        return sharers.anyBut(core);
    }
};

/** Per-line transaction serialization + directory entries. */
class Directory
{
  public:
    /** Inline capacity of a queued transaction: the flush handler's
     * this + addr + flags + a 64-byte line. */
    static constexpr std::size_t kTxnBytes = 104;
    using Txn = InplaceCallback<kTxnBytes>;

    /** Default idle-control-block cache cap: covers the hot working
     * set of the paper's 32-core shapes. Larger machines must scale
     * the cap with setIdleCap() -- at 256+ tiles a fixed 64K cap
     * thrashes (every release erases, every acquire re-inserts). */
    static constexpr std::size_t kMaxIdleCtl = 64 * 1024;

    /** Per-core idle-block budget used by idleCapFor(): at 32 cores it
     * reproduces kMaxIdleCtl exactly, so the paper's shapes keep their
     * historical behavior. */
    static constexpr std::size_t kIdleCtlPerCore = 2048;

    /** Idle-cache cap for a machine with @p num_cores cores. */
    static constexpr std::size_t
    idleCapFor(std::uint32_t num_cores)
    {
        const std::size_t scaled = std::size_t(num_cores) * kIdleCtlPerCore;
        return scaled > kMaxIdleCtl ? scaled : kMaxIdleCtl;
    }

    /**
     * Publish occupancy stats: @p live_hw gets the live control-block
     * high-water mark ("dirN.ctrl_blocks_live"; live = busy +
     * cached-idle blocks, bounded near the idle cap), and @p evictions
     * (optional) counts idle blocks dropped because the cache was at
     * its cap ("dirN.ctrl_evictions") -- the thrash signal.
     */
    void
    attachStats(Counter *live_hw, Counter *evictions = nullptr)
    {
        _liveHw = live_hw;
        _evictions = evictions;
    }

    /** Override the idle-cache cap (defaults to kMaxIdleCtl). */
    void setIdleCap(std::size_t cap) { _idleCap = cap; }

    /** Current idle-cache cap. */
    std::size_t idleCap() const { return _idleCap; }

    /** Current live control blocks (tests). */
    std::size_t liveCtl() const { return _ctl.size(); }

    /** Directory entry for @p line_addr (created on demand). */
    DirEntry &entry(Addr line_addr);

    /** Drop the entry (line evicted from L2). */
    void erase(Addr line_addr);

    /**
     * Run @p txn when the line's busy slot frees (immediately if free).
     * The transaction must call release() exactly once when done.
     */
    void acquire(Addr line_addr, Txn txn);

    /** Finish the current transaction; starts the next queued one. */
    void release(Addr line_addr);

    /** True if a transaction is active on the line. */
    bool busy(Addr line_addr) const;

    /** Power failure: all volatile directory state vanishes. */
    void clear();

  private:
    struct Waiter
    {
        Waiter *next = nullptr;
        Txn fn;
    };

    struct LineCtl
    {
        bool busy = false;
        Waiter *head = nullptr;
        Waiter *tail = nullptr;
    };

    void releaseWaiter(Waiter *w);

    std::unordered_map<Addr, DirEntry> _entries;
    /** Cached across acquire/release (busy=false when idle) so hot
     * lines don't churn map nodes; bounded by _idleCap. */
    std::unordered_map<Addr, LineCtl> _ctl;
    std::size_t _idleCtl = 0;
    std::size_t _idleCap = kMaxIdleCtl;
    Counter *_liveHw = nullptr;  //!< optional occupancy high-water
    Counter *_evictions = nullptr;  //!< optional at-cap drop count
    std::size_t _liveHwSeen = 0;

    FreeListPool<Waiter> _pool;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_DIRECTORY_HH
