/**
 * @file
 * Directory state for the banked shared L2.
 *
 * Each L2 tile is the home node for the lines that map to it and keeps,
 * per resident line, the owning L1 (Modified/Exclusive holder) and a
 * sharer bitmask. A per-line busy flag serializes coherence
 * transactions; queued requests run in arrival order.
 */

#ifndef ATOMSIM_CACHE_DIRECTORY_HH
#define ATOMSIM_CACHE_DIRECTORY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "sim/types.hh"

namespace atomsim
{

/** Sentinel: no owning core. */
constexpr CoreId kNoCore = ~CoreId(0);

/** Directory entry for one line homed at a tile. */
struct DirEntry
{
    /** L1 holding the line Exclusive/Modified, or kNoCore. */
    CoreId owner = kNoCore;
    /** Bitmask of L1s that may hold the line Shared (may be stale:
     * clean lines drop silently; spurious invalidations are no-ops). */
    std::uint64_t sharers = 0;

    bool
    anySharerBut(CoreId core) const
    {
        return (sharers & ~(std::uint64_t(1) << core)) != 0;
    }
};

/** Per-line transaction serialization + directory entries. */
class Directory
{
  public:
    /** Directory entry for @p line_addr (created on demand). */
    DirEntry &entry(Addr line_addr);

    /** Drop the entry (line evicted from L2). */
    void erase(Addr line_addr);

    /**
     * Run @p txn when the line's busy slot frees (immediately if free).
     * The transaction must call release() exactly once when done.
     */
    void acquire(Addr line_addr, std::function<void()> txn);

    /** Finish the current transaction; starts the next queued one. */
    void release(Addr line_addr);

    /** True if a transaction is active on the line. */
    bool busy(Addr line_addr) const;

    /** Power failure: all volatile directory state vanishes. */
    void clear();

  private:
    struct LineCtl
    {
        bool busy = false;
        std::deque<std::function<void()>> waiters;
    };

    std::unordered_map<Addr, DirEntry> _entries;
    std::unordered_map<Addr, LineCtl> _ctl;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_DIRECTORY_HH
