/**
 * @file
 * Miss status handling registers.
 *
 * An MSHR tracks one outstanding line miss and the accesses waiting on
 * it. The table bounds outstanding misses (32 in Table I); requests
 * that find the table full wait in an overflow queue, modeling the
 * structural stall.
 */

#ifndef ATOMSIM_CACHE_MSHR_HH
#define ATOMSIM_CACHE_MSHR_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace atomsim
{

/** Table of outstanding misses with per-line waiter lists. */
class MshrTable
{
  public:
    using Waiter = std::function<void()>;

    explicit MshrTable(std::uint32_t entries) : _entries(entries) {}

    /** True if a miss to this line is already outstanding. */
    bool
    has(Addr line_addr) const
    {
        return _active.count(lineAlign(line_addr)) != 0;
    }

    /** True if no entry is free (and the line is not already tracked). */
    bool
    full() const
    {
        return _active.size() >= _entries;
    }

    /**
     * Allocate an entry for @p line_addr.
     * @pre !has(line_addr) && !full()
     */
    void allocate(Addr line_addr);

    /** Add a callback to run when the line's fill completes. */
    void addWaiter(Addr line_addr, Waiter w);

    /**
     * Complete the miss: deallocates the entry and returns the waiter
     * list (the cache runs them after installing the line).
     */
    std::vector<Waiter> complete(Addr line_addr);

    /** Queue a thunk to run when any entry frees up. */
    void
    queueForFree(Waiter w)
    {
        _overflow.push_back(std::move(w));
    }

    std::size_t active() const { return _active.size(); }
    std::size_t overflowDepth() const { return _overflow.size(); }

    /** Drop all state (power failure). */
    void clear();

  private:
    std::uint32_t _entries;
    std::unordered_map<Addr, std::vector<Waiter>> _active;
    std::deque<Waiter> _overflow;
};

} // namespace atomsim

#endif // ATOMSIM_CACHE_MSHR_HH
