/**
 * @file
 * Miss status handling registers.
 *
 * An MSHR tracks one outstanding line miss and the accesses waiting on
 * it. The table bounds outstanding misses (32 in Table I); requests
 * that find the table full wait in an overflow queue, modeling the
 * structural stall.
 *
 * The table is allocation-free in steady state: entries live in a
 * fixed array sized at construction, and waiter continuations are
 * intrusive pool nodes owned by the table. The continuation itself is
 * a fixed-capacity InplaceFunction -- a capture that outgrows it is a
 * compile error, not a silent heap allocation -- sized for the L1 load
 * path's retry (this + addr + a 48-byte completion object).
 */

#ifndef ATOMSIM_CACHE_MSHR_HH
#define ATOMSIM_CACHE_MSHR_HH

#include <cstdint>
#include <vector>

#include "sim/callback.hh"
#include "sim/pool.hh"
#include "sim/types.hh"

namespace atomsim
{

/** Table of outstanding misses with per-line waiter lists. */
class MshrTable
{
  public:
    /** Inline capacity of a miss continuation, in bytes. */
    static constexpr std::size_t kContinuationBytes = 72;

    /** A waiter's resume action, stored inline in the pool node. */
    using Continuation = InplaceCallback<kContinuationBytes>;

    /** Pooled waiter node; entries chain these FIFO. */
    struct Waiter
    {
        Waiter *next = nullptr;
        Continuation fn;
    };

    explicit MshrTable(std::uint32_t entries);
    ~MshrTable();

    MshrTable(const MshrTable &) = delete;
    MshrTable &operator=(const MshrTable &) = delete;

    /** True if a miss to this line is already outstanding. */
    bool has(Addr line_addr) const;

    /** True if no entry is free (and the line is not already tracked). */
    bool full() const { return _active >= _entries.size(); }

    /**
     * Allocate an entry for @p line_addr.
     * @pre !has(line_addr) && !full()
     */
    void allocate(Addr line_addr);

    /** Add a continuation to run when the line's fill completes. */
    void addWaiter(Addr line_addr, Continuation w);

    /**
     * Complete the miss: deallocates the entry and returns its waiter
     * chain (FIFO), with one queued overflow request appended if any.
     * Run the chain with runAndPop():
     *
     *     for (Waiter *w = mshrs.complete(line); w;)
     *         w = mshrs.runAndPop(w);
     */
    Waiter *complete(Addr line_addr);

    /** Invoke @p w's continuation, recycle the node, return the next
     * waiter in the chain. Reentrant: the continuation may allocate
     * entries and waiters (the chain is already detached). */
    Waiter *runAndPop(Waiter *w);

    /** Queue a continuation to run when any entry frees up. */
    void queueForFree(Continuation w);

    std::size_t active() const { return _active; }
    std::size_t overflowDepth() const { return _overflowCount; }

    /** Drop all state (power failure). */
    void clear();

    // --- pool introspection (tests / no-allocation proofs) ------------

    /** Waiter nodes ever allocated (pool high-water mark). */
    std::size_t waiterPoolAllocated() const { return _pool.allocated(); }

    /** Waiter nodes currently idle on the free list. */
    std::size_t waiterPoolFree() const { return _pool.idle(); }

  private:
    /** One MSHR entry, pooled in the fixed table array. The waiter
     * chain (the miss's continuations) is owned by the entry. */
    struct Entry
    {
        Addr line = 0;
        bool used = false;
        Waiter *head = nullptr;
        Waiter *tail = nullptr;
    };

    Entry *find(Addr line_addr);
    const Entry *find(Addr line_addr) const;

    void releaseWaiter(Waiter *w);
    void releaseChain(Waiter *w);

    std::vector<Entry> _entries;  //!< fixed-size table (Table I: 32)
    std::size_t _active = 0;

    Waiter *_overflowHead = nullptr;  //!< structural-stall queue (FIFO)
    Waiter *_overflowTail = nullptr;
    std::size_t _overflowCount = 0;

    FreeListPool<Waiter> _pool;
};

// The waiter node (link + inline continuation) must stay compact: it
// is the unit the miss path recycles on every fill.
static_assert(sizeof(MshrTable::Waiter) <= 96,
              "MSHR waiter node grew past its budget");

} // namespace atomsim

#endif // ATOMSIM_CACHE_MSHR_HH
