#include "mem/ssd_device.hh"

#include <algorithm>
#include <cstring>
#include <string>

#include "sim/logging.hh"

namespace atomsim
{

namespace fwdmap
{

std::uint32_t
rehydrate(DataImage &nvm, const AddressMap &amap, McId mc,
          const DataImage &flash)
{
    std::uint32_t restored = 0;
    std::array<std::uint8_t, kPageBytes> buf;
    for (std::uint32_t j = 0; j < amap.ssdMapPagesPerMc(); ++j) {
        const Addr base = amap.ssdMapPage(mc, j);
        for (std::uint32_t i = 0;
             i < AddressMap::kSsdEntriesPerMapPage; ++i) {
            const Addr entry = base + Addr(i) * 16;
            const auto m =
                decode(nvm.load64(entry), nvm.load64(entry + 8));
            if (!m)
                continue;
            flash.read(Addr(m->second) * kPageBytes, kPageBytes,
                       buf.data());
            nvm.write(m->first, kPageBytes, buf.data());
            nvm.store64(entry, 0);
            nvm.store64(entry + 8, 0);
            ++restored;
        }
    }
    return restored;
}

} // namespace fwdmap

// ---------------------------------------------------------------------
// SsdDevice
// ---------------------------------------------------------------------

SsdDevice::SsdDevice(McId id, EventQueue &eq, const SystemConfig &cfg,
                     StatSet &stats)
    : _id(id),
      _eq(eq),
      _cfg(cfg),
      _xferCycles(cfg.ssdPageTransferCycles()),
      _qps(cfg.ssdChannels),
      _chanFree(cfg.ssdChannels, 0),
      _dieFree(std::size_t(cfg.ssdChannels) * cfg.ssdDiesPerChannel, 0),
      _pollEvent([this] { poll(); }, "ssd_poll"),
      _statReads(stats.counter("ssd" + std::to_string(id), "reads")),
      _statPrograms(
          stats.counter("ssd" + std::to_string(id), "programs")),
      _statSqStalls(
          stats.counter("ssd" + std::to_string(id), "sq_stalls"))
{
    for (auto &qp : _qps) {
        qp.sq.assign(cfg.ssdQueueDepth, nullptr);
        qp.cq.assign(cfg.ssdQueueDepth, nullptr);
    }
}

SsdDevice::Cmd *
SsdDevice::acquireCmd()
{
    Cmd *cmd = _pool.acquire();
    cmd->isWrite = false;
    cmd->flashPage = 0;
    return cmd;
}

void
SsdDevice::releaseCmd(Cmd *cmd)
{
    cmd->done = {};
    _pool.release(cmd);
}

bool
SsdDevice::submit(std::uint32_t qp_idx, Cmd *cmd)
{
    Qp &qp = _qps[qp_idx];
    if (qp.outstanding >= _cfg.ssdQueueDepth) {
        _statSqStalls.inc();
        return false;
    }
    qp.sq[qp.sqTail] = cmd;
    qp.sqTail = (qp.sqTail + 1) % _cfg.ssdQueueDepth;
    ++qp.sqCount;
    ++qp.outstanding;
    return true;
}

void
SsdDevice::ringDoorbell(std::uint32_t)
{
    if (!_pollEvent.scheduled())
        _eq.scheduleIn(_pollEvent, _cfg.ssdPollInterval);
}

std::uint32_t
SsdDevice::totalOutstanding() const
{
    std::uint32_t n = 0;
    for (const auto &qp : _qps)
        n += qp.outstanding;
    return n;
}

void
SsdDevice::poll()
{
    // Reap completions first: callbacks fire at poll ticks (the host
    // observes completion only when it looks), then release the nodes.
    for (auto &qp : _qps) {
        while (qp.cqCount > 0) {
            Cmd *cmd = qp.cq[qp.cqHead];
            qp.cq[qp.cqHead] = nullptr;
            qp.cqHead = (qp.cqHead + 1) % _cfg.ssdQueueDepth;
            --qp.cqCount;
            --qp.outstanding;
            auto done = std::move(cmd->done);
            cmd->done = {};
            if (done)
                done(*cmd);
            releaseCmd(cmd);
        }
    }
    // Then fetch submissions and dispatch them to the channel/die
    // timing model.
    for (std::uint32_t q = 0; q < _qps.size(); ++q) {
        Qp &qp = _qps[q];
        while (qp.sqCount > 0) {
            Cmd *cmd = qp.sq[qp.sqHead];
            qp.sq[qp.sqHead] = nullptr;
            qp.sqHead = (qp.sqHead + 1) % _cfg.ssdQueueDepth;
            --qp.sqCount;
            dispatch(q, cmd);
        }
    }
    if (totalOutstanding() > 0 && !_pollEvent.scheduled())
        _eq.scheduleIn(_pollEvent, _cfg.ssdPollInterval);
}

void
SsdDevice::dispatch(std::uint32_t q, Cmd *cmd)
{
    const Tick now = _eq.now();
    const std::uint32_t die =
        (cmd->flashPage / _cfg.ssdChannels) % _cfg.ssdDiesPerChannel;
    const std::size_t die_idx =
        std::size_t(q) * _cfg.ssdDiesPerChannel + die;
    Tick fin;
    if (cmd->isWrite) {
        // Program: bus transfer into the die, then tPROG occupies the
        // die alone (the channel frees as soon as the transfer ends).
        const Tick bus_start = std::max(now, _chanFree[q]);
        const Tick xfer_done = bus_start + _xferCycles;
        fin = std::max(xfer_done, _dieFree[die_idx]) +
              _cfg.ssdProgramLatency;
        _chanFree[q] = xfer_done;
        _dieFree[die_idx] = fin;
    } else {
        // Read: tR senses on the die, then the page crosses the bus.
        const Tick start = std::max(now, _dieFree[die_idx]);
        const Tick sense_done = start + _cfg.ssdReadLatency;
        const Tick bus_start = std::max(sense_done, _chanFree[q]);
        fin = bus_start + _xferCycles;
        _dieFree[die_idx] = fin;
        _chanFree[q] = fin;
    }
    _inDevice.push_back(cmd);
    _eq.post(fin, [this, q, cmd, e = _epoch] { onDeviceDone(q, cmd, e); });
}

void
SsdDevice::onDeviceDone(std::uint32_t q, Cmd *cmd, std::uint64_t epoch)
{
    if (epoch != _epoch)
        return;  // powerFail reclaimed the command node
    const auto it = std::find(_inDevice.begin(), _inDevice.end(), cmd);
    if (it != _inDevice.end())
        _inDevice.erase(it);
    if (cmd->isWrite) {
        _flash.write(Addr(cmd->flashPage) * kPageBytes, kPageBytes,
                     cmd->data.data());
        ++_programs;
        _statPrograms.inc();
    } else {
        _flash.read(Addr(cmd->flashPage) * kPageBytes, kPageBytes,
                    cmd->data.data());
        ++_reads;
        _statReads.inc();
    }
    Qp &qp = _qps[q];
    qp.cq[qp.cqTail] = cmd;
    qp.cqTail = (qp.cqTail + 1) % _cfg.ssdQueueDepth;
    ++qp.cqCount;
    // The poll loop keeps itself scheduled while commands are
    // outstanding, so this completion will be reaped without help.
}

void
SsdDevice::powerFail()
{
    ++_epoch;
    for (auto &qp : _qps) {
        while (qp.sqCount > 0) {
            Cmd *cmd = qp.sq[qp.sqHead];
            qp.sq[qp.sqHead] = nullptr;
            qp.sqHead = (qp.sqHead + 1) % _cfg.ssdQueueDepth;
            --qp.sqCount;
            releaseCmd(cmd);
        }
        while (qp.cqCount > 0) {
            Cmd *cmd = qp.cq[qp.cqHead];
            qp.cq[qp.cqHead] = nullptr;
            qp.cqHead = (qp.cqHead + 1) % _cfg.ssdQueueDepth;
            --qp.cqCount;
            releaseCmd(cmd);
        }
        qp.sqHead = qp.sqTail = qp.cqHead = qp.cqTail = 0;
        qp.outstanding = 0;
    }
    for (Cmd *cmd : _inDevice)
        releaseCmd(cmd);
    _inDevice.clear();
    std::fill(_chanFree.begin(), _chanFree.end(), Tick(0));
    std::fill(_dieFree.begin(), _dieFree.end(), Tick(0));
    _eq.deschedule(_pollEvent);
    // _flash is the non-volatile medium: it survives.
}

// ---------------------------------------------------------------------
// DestageEngine
// ---------------------------------------------------------------------

DestageEngine::DestageEngine(McId id, EventQueue &eq,
                             const SystemConfig &cfg,
                             const AddressMap &amap,
                             MemoryController &ctrl, SsdDevice &ssd,
                             DataImage &nvm, StatSet &stats)
    : _id(id),
      _eq(eq),
      _cfg(cfg),
      _amap(amap),
      _ctrl(ctrl),
      _ssd(ssd),
      _nvm(nvm),
      _slots(amap.ssdMapEntriesPerMc()),
      _pumpEvent([this] { pump(); }, "destage_pump"),
      _statPages(stats.counter("mc" + std::to_string(id),
                               "destage_pages")),
      _statLogPages(stats.counter("mc" + std::to_string(id),
                                  "destage_log_pages")),
      _statPromotions(stats.counter("mc" + std::to_string(id),
                                    "destage_promotions")),
      _statCancelled(stats.counter("mc" + std::to_string(id),
                                   "destage_cancelled")),
      _statTruncWaits(stats.counter("mc" + std::to_string(id),
                                    "destage_trunc_waits")),
      _statStalls(stats.counter("mc" + std::to_string(id),
                                "destage_stalls"))
{
    // Pop order is deterministic (smallest index first), so destage
    // placement — and with it every downstream byte — replays
    // identically across runs and shard counts.
    _freeSlots.reserve(_slots.size());
    for (std::uint32_t s = std::uint32_t(_slots.size()); s-- > 0;)
        _freeSlots.push_back(s);
    _freeFlash.reserve(cfg.ssdFlashPagesPerMc);
    for (std::uint32_t p = cfg.ssdFlashPagesPerMc; p-- > 0;)
        _freeFlash.push_back(p);
}

Addr
DestageEngine::mapLineAddr(std::uint32_t slot) const
{
    const std::uint32_t per_page = AddressMap::kSsdEntriesPerMapPage;
    return _amap.ssdMapPage(_id, slot / per_page) +
           Addr((slot % per_page) / 4) * kLineBytes;
}

Line
DestageEngine::composeMapLine(std::uint32_t line_idx) const
{
    // Compose only from slots whose flash program has completed
    // (MapSlot::mapped); anything else would persist an entry pointing
    // at garbage flash if a crash lands before the program finishes.
    Line line{};
    for (std::uint32_t k = 0; k < 4; ++k) {
        const std::uint32_t s = line_idx * 4 + k;
        if (s >= _slots.size() || !_slots[s].mapped)
            continue;
        std::uint64_t w0, w1;
        fwdmap::encode(_slots[s].page, _slots[s].flashPage, w0, w1);
        std::memcpy(line.data() + k * 16, &w0, 8);
        std::memcpy(line.data() + k * 16 + 8, &w1, 8);
    }
    return line;
}

void
DestageEngine::writeMapLine(std::uint32_t slot,
                            MemoryController::WriteCallback cb)
{
    _ctrl.writeLine(mapLineAddr(slot), composeMapLine(slot / 4),
                    WriteKind::FwdMap, std::move(cb));
}

void
DestageEngine::scrubPage(Addr page)
{
    // Poison, not zero: a path that wrongly treats NVM as
    // authoritative for a forwarded page corrupts visibly instead of
    // reading plausible stale bytes.
    Line poison;
    poison.fill(0x5A);
    for (std::uint32_t l = 0; l < kPageBytes / kLineBytes; ++l)
        _nvm.writeLine(page + Addr(l) * kLineBytes, poison);
}

DestageEngine::Attempt
DestageEngine::tryDestage(Addr page, bool is_log)
{
    if (_pages.count(page))
        return Attempt::Skip;  // already in the pipeline (or forwarded)
    if (_freeSlots.empty() || _freeFlash.empty()) {
        _statStalls.inc();
        return Attempt::Defer;
    }
    // Never snapshot under a write in flight: the destage starts only
    // from a quiescent page (late arrivals cancel it instead).
    if (_ctrl.hasPendingWriteInPage(page))
        return Attempt::Defer;

    const std::uint32_t slot = _freeSlots.back();
    const std::uint32_t flash_page = _freeFlash.back();
    SsdDevice::Cmd *cmd = _ssd.acquireCmd();
    cmd->isWrite = true;
    cmd->flashPage = flash_page;
    _nvm.read(page, kPageBytes, cmd->data.data());
    cmd->done = [this, page](SsdDevice::Cmd &) { onProgramDone(page); };
    const std::uint32_t qp = _ssd.qpOf(flash_page);
    if (!_ssd.submit(qp, cmd)) {
        _ssd.releaseCmd(cmd);
        return Attempt::Defer;
    }
    _ssd.ringDoorbell(qp);
    _freeSlots.pop_back();
    _freeFlash.pop_back();

    PageRec rec;
    rec.state = PageState::Programming;
    rec.isLog = is_log;
    rec.slot = slot;
    rec.flashPage = flash_page;
    _pages.emplace(page, std::move(rec));
    MapSlot &s = _slots[slot];
    s.page = page;
    s.flashPage = flash_page;
    s.mapped = false;
    ++_inFlight;
    return Attempt::Started;
}

void
DestageEngine::onProgramDone(Addr page)
{
    const auto it = _pages.find(page);
    if (it == _pages.end())
        return;
    PageRec &rec = it->second;
    if (rec.cancel) {
        // A write landed while the program was in flight: the snapshot
        // is stale, NVM stays authoritative, the flash copy is waste.
        _slots[rec.slot] = MapSlot{};
        _freeSlots.push_back(rec.slot);
        _freeFlash.push_back(rec.flashPage);
        _statCancelled.inc();
        --_inFlight;
        _pages.erase(it);
        drainBoundWaiters();
        maybeDestage();
        return;
    }
    rec.state = PageState::MapWriting;
    _slots[rec.slot].mapped = true;
    writeMapLine(rec.slot, [this, page] { onMapDurable(page); });
}

void
DestageEngine::onMapDurable(Addr page)
{
    const auto it = _pages.find(page);
    if (it == _pages.end())
        return;
    PageRec &rec = it->second;
    // The forwarding entry is durable: flash owns the page now.
    // Surrender the NVM copy only at this point — a crash any earlier
    // leaves an invalid (or absent) entry and intact NVM bytes.
    scrubPage(page);
    rec.state = PageState::Forwarded;
    --_inFlight;
    ++_pagesDestaged;
    (rec.isLog ? _statLogPages : _statPages).inc();
    drainBoundWaiters();
    if (rec.dropOnMap)
        startClear(page);
    else if (!rec.parked.empty())
        startPromotion(page);
    maybeDestage();
}

void
DestageEngine::startPromotion(Addr page)
{
    PageRec &rec = _pages.at(page);
    if (rec.state != PageState::Forwarded)
        return;
    SsdDevice::Cmd *cmd = _ssd.acquireCmd();
    cmd->isWrite = false;
    cmd->flashPage = rec.flashPage;
    cmd->done = [this, page](SsdDevice::Cmd &c) {
        onPromoteRead(page, c.data.data());
    };
    const std::uint32_t qp = _ssd.qpOf(cmd->flashPage);
    if (!_ssd.submit(qp, cmd)) {
        _ssd.releaseCmd(cmd);
        _promoteRetry.push_back(page);
        schedulePump();
        return;
    }
    _ssd.ringDoorbell(qp);
    rec.state = PageState::Promoting;
}

void
DestageEngine::onPromoteRead(Addr page, const std::uint8_t *data)
{
    const auto it = _pages.find(page);
    if (it == _pages.end())
        return;
    PageRec &rec = it->second;
    // Restore the bytes, then clear the entry durably; parked accesses
    // replay only once the clear is durable (a write replayed earlier
    // would be clobbered by rehydration if a crash found the entry
    // still valid).
    _nvm.write(page, kPageBytes, data);
    _slots[rec.slot].mapped = false;
    rec.state = PageState::Clearing;
    ++_promotionsDone;
    _statPromotions.inc();
    writeMapLine(rec.slot, [this, page] { onClearDurable(page); });
}

void
DestageEngine::startClear(Addr page)
{
    // Truncate drop of a forwarded log bucket: restore the stale bytes
    // functionally (so the freed bucket reads exactly as if the
    // destage never happened — recovery's sequence window already
    // rejects its records) and clear the entry durably. No timed SSD
    // read: this is metadata housekeeping inside truncation, not a
    // demand access.
    PageRec &rec = _pages.at(page);
    std::array<std::uint8_t, kPageBytes> buf;
    _ssd.flash().read(Addr(rec.flashPage) * kPageBytes, kPageBytes,
                      buf.data());
    _nvm.write(page, kPageBytes, buf.data());
    _slots[rec.slot].mapped = false;
    rec.state = PageState::Clearing;
    writeMapLine(rec.slot, [this, page] { onClearDurable(page); });
}

void
DestageEngine::onClearDurable(Addr page)
{
    const auto it = _pages.find(page);
    if (it == _pages.end())
        return;
    PageRec rec = std::move(it->second);
    _pages.erase(it);
    _slots[rec.slot] = MapSlot{};
    _freeSlots.push_back(rec.slot);
    _freeFlash.push_back(rec.flashPage);
    // Replay parked accesses in arrival order through the ordinary
    // controller paths (they re-enter the intercept and fall through).
    for (auto &op : rec.parked) {
        if (op.isWrite)
            _ctrl.writeNvm(op.addr, op.data, op.wkind,
                           std::move(op.wcb));
        else
            _ctrl.readNvm(op.addr, op.rkind, std::move(op.rcb));
    }
}

bool
DestageEngine::interceptRead(Addr addr, ReadKind kind,
                             MemoryController::ReadCallback &cb)
{
    if (_pages.empty())
        return false;
    const auto it = _pages.find(addr & ~Addr(kPageBytes - 1));
    if (it == _pages.end())
        return false;
    PageRec &rec = it->second;
    switch (rec.state) {
      case PageState::Programming:
      case PageState::MapWriting:
      case PageState::Clearing:
        // NVM bytes are still (or again) authoritative.
        return false;
      case PageState::Forwarded:
      case PageState::Promoting: {
        ParkedOp op;
        op.isWrite = false;
        op.addr = addr;
        op.rkind = kind;
        op.rcb = std::move(cb);
        rec.parked.push_back(std::move(op));
        if (rec.state == PageState::Forwarded)
            startPromotion(it->first);
        return true;
      }
    }
    return false;
}

bool
DestageEngine::interceptWrite(Addr addr, const Line &data,
                              WriteKind kind,
                              MemoryController::WriteCallback &cb)
{
    if (_pages.empty() || kind == WriteKind::FwdMap)
        return false;
    const auto it = _pages.find(addr & ~Addr(kPageBytes - 1));
    if (it == _pages.end())
        return false;
    PageRec &rec = it->second;
    switch (rec.state) {
      case PageState::Programming:
        // The in-flight snapshot is stale now; cancel the destage and
        // let the write through (NVM never stopped being the truth).
        rec.cancel = true;
        return false;
      case PageState::MapWriting:
      case PageState::Promoting:
      case PageState::Clearing: {
        // Park until the entry settles: a write committed while the
        // entry is (or may become) valid would be undone by
        // rehydration after a crash.
        ParkedOp op;
        op.isWrite = true;
        op.addr = addr;
        op.data = data;
        op.wkind = kind;
        op.wcb = std::move(cb);
        rec.parked.push_back(std::move(op));
        return true;
      }
      case PageState::Forwarded: {
        ParkedOp op;
        op.isWrite = true;
        op.addr = addr;
        op.data = data;
        op.wkind = kind;
        op.wcb = std::move(cb);
        rec.parked.push_back(std::move(op));
        startPromotion(it->first);
        return true;
      }
    }
    return false;
}

void
DestageEngine::onLogSegmentCold(Addr bucket_page)
{
    if (_pages.count(bucket_page))
        return;
    if (std::find(_pendingColdLog.begin(), _pendingColdLog.end(),
                  bucket_page) != _pendingColdLog.end())
        return;
    _pendingColdLog.push_back(bucket_page);
    maybeDestage();
}

void
DestageEngine::onTruncate(std::vector<Addr> data_pages,
                          std::vector<Addr> log_pages,
                          std::function<void()> done)
{
    for (const Addr p : log_pages)
        dropLogPage(p);
    for (const Addr p : data_pages)
        touchCold(p);
    maybeDestage();
    if (_cfg.durabilityPolicy == DurabilityPolicy::Strict ||
        backlog() <= _cfg.ssdMaxDestageBacklog) {
        done();
        return;
    }
    _statTruncWaits.inc();
    _boundWaiters.push_back(std::move(done));
}

void
DestageEngine::dropLogPage(Addr page)
{
    // A freed bucket must not be destaged later on a stale request.
    const auto pending = std::find(_pendingColdLog.begin(),
                                   _pendingColdLog.end(), page);
    if (pending != _pendingColdLog.end())
        _pendingColdLog.erase(pending);
    const auto it = _pages.find(page);
    if (it == _pages.end())
        return;
    PageRec &rec = it->second;
    switch (rec.state) {
      case PageState::Programming:
        rec.cancel = true;
        break;
      case PageState::MapWriting:
        rec.dropOnMap = true;
        break;
      case PageState::Forwarded:
        startClear(page);
        break;
      case PageState::Promoting:
      case PageState::Clearing:
        break;  // already on its way out of the pipeline
    }
}

void
DestageEngine::touchCold(Addr page)
{
    if (_pages.count(page))
        return;
    const auto pos = std::find(_coldLru.begin(), _coldLru.end(), page);
    if (pos != _coldLru.end())
        _coldLru.erase(pos);
    _coldLru.push_back(page);
}

void
DestageEngine::maybeDestage()
{
    bool deferred = false;
    // Cold log segments first: the flash-resident log tail is the
    // piece recovery depends on; data pages are a capacity play.
    while (!_pendingColdLog.empty()) {
        const Attempt a = tryDestage(_pendingColdLog.front(), true);
        if (a == Attempt::Defer) {
            deferred = true;
            break;
        }
        _pendingColdLog.erase(_pendingColdLog.begin());
    }
    if (!deferred) {
        while (_coldLru.size() > _cfg.ssdColdPageWatermark) {
            const Attempt a = tryDestage(_coldLru.front(), false);
            if (a == Attempt::Defer) {
                deferred = true;
                break;
            }
            _coldLru.erase(_coldLru.begin());
        }
    }
    if (deferred)
        schedulePump();
}

std::size_t
DestageEngine::backlog() const
{
    std::size_t b = _pendingColdLog.size() + _inFlight;
    if (_coldLru.size() > _cfg.ssdColdPageWatermark)
        b += _coldLru.size() - _cfg.ssdColdPageWatermark;
    return b;
}

void
DestageEngine::drainBoundWaiters()
{
    while (!_boundWaiters.empty() &&
           backlog() <= _cfg.ssdMaxDestageBacklog) {
        auto done = std::move(_boundWaiters.front());
        _boundWaiters.erase(_boundWaiters.begin());
        done();
    }
}

std::optional<DestageEngine::PageState>
DestageEngine::pageState(Addr page) const
{
    const auto it = _pages.find(page);
    if (it == _pages.end())
        return std::nullopt;
    return it->second.state;
}

std::uint32_t
DestageEngine::forwardedPages() const
{
    std::uint32_t n = 0;
    for (const auto &kv : _pages)
        if (kv.second.state == PageState::Forwarded)
            ++n;
    return n;
}

bool
DestageEngine::requestDestage(Addr page, bool is_log)
{
    return tryDestage(page, is_log) == Attempt::Started;
}

void
DestageEngine::schedulePump()
{
    if (!_pumpEvent.scheduled())
        _eq.scheduleIn(_pumpEvent, _cfg.ssdPollInterval);
}

void
DestageEngine::pump()
{
    std::vector<Addr> retry;
    retry.swap(_promoteRetry);
    for (const Addr p : retry) {
        if (_pages.count(p))
            startPromotion(p);
    }
    maybeDestage();
    if (!_promoteRetry.empty())
        schedulePump();
}

void
DestageEngine::powerFail()
{
    // Everything here is volatile pipeline state; the durable truth a
    // crash leaves behind is the NVM-resident map (plus the flash
    // image the device keeps), which recovery rehydrates.
    _pages.clear();
    for (auto &s : _slots)
        s = MapSlot{};
    _freeSlots.clear();
    for (std::uint32_t s = std::uint32_t(_slots.size()); s-- > 0;)
        _freeSlots.push_back(s);
    _freeFlash.clear();
    for (std::uint32_t p = _cfg.ssdFlashPagesPerMc; p-- > 0;)
        _freeFlash.push_back(p);
    _coldLru.clear();
    _pendingColdLog.clear();
    _promoteRetry.clear();
    _boundWaiters.clear();
    _inFlight = 0;
    _eq.deschedule(_pumpEvent);
}

} // namespace atomsim
