#include "mem/address_map.hh"

#include "sim/logging.hh"

namespace atomsim
{

AddressMap::AddressMap(const SystemConfig &cfg, Addr data_bytes)
    : _numMc(cfg.numMemCtrls),
      _l2Tiles(cfg.l2Tiles),
      _bucketsPerMc(cfg.bucketsPerMc),
      _recordsPerBucket(cfg.recordsPerBucket)
{
    // Round the data region up to a whole number of interleave groups so
    // the log region starts on a page that maps to MC 0.
    const Addr group = Addr(kPageBytes) * _numMc;
    _logBase = (data_bytes + group - 1) / group * group;
    _logEnd = _logBase +
              Addr(_bucketsPerMc) * _numMc * kPageBytes;

    panic_if(_recordsPerBucket * kRecordBytes != kPageBytes,
             "bucket must be exactly one page (%u records of 512 B)",
             unsigned(kPageBytes / kRecordBytes));

    if (cfg.ssdTier) {
        _ssdMapPagesPerMc =
            (cfg.ssdFlashPagesPerMc + kSsdEntriesPerMapPage - 1) /
            kSsdEntriesPerMapPage;
    }

    if (cfg.hybridMode == HybridMode::AppDirect) {
        if (cfg.appDirectRegion == AppDirectRegion::LogRegion) {
            // Log placement "direct": the log and ADR pages bypass
            // the DRAM cache; data pages are cached.
            _appDirectBase = _logBase;
            _appDirectEnd = reservedEnd();
        } else {
            // Inverse design point: data pages direct, log cached.
            _appDirectBase = 0;
            _appDirectEnd = _logBase;
        }
    }
}

McId
AddressMap::memCtrl(Addr addr) const
{
    return McId((addr >> kPageShift) & (_numMc - 1));
}

std::uint32_t
AddressMap::homeTile(Addr addr) const
{
    return std::uint32_t(lineNumber(addr) % _l2Tiles);
}

Addr
AddressMap::bucketBase(McId mc, std::uint32_t bucket) const
{
    panic_if(mc >= _numMc, "bad mc %u", mc);
    return _logBase + (Addr(bucket) * _numMc + mc) * kPageBytes;
}

Addr
AddressMap::recordBase(McId mc, std::uint32_t bucket,
                       std::uint32_t record) const
{
    panic_if(record >= _recordsPerBucket, "bad record index %u", record);
    return bucketBase(mc, bucket) + Addr(record) * kRecordBytes;
}

Addr
AddressMap::ssdMapPage(McId mc, std::uint32_t j) const
{
    panic_if(mc >= _numMc, "bad mc %u", mc);
    panic_if(j >= _ssdMapPagesPerMc, "bad ssd map page %u", j);
    return ssdMapBase() + (Addr(j) * _numMc + mc) * kPageBytes;
}

} // namespace atomsim
