#include "mem/dram_device.hh"

#include <algorithm>

namespace atomsim
{

DramDevice::DramDevice(EventQueue &eq, const SystemConfig &cfg,
                       Counter &row_hits, Counter &row_misses)
    : _eq(eq),
      _cfg(cfg),
      _transferCycles(cfg.dramTransferCycles()),
      _banks(cfg.dramBanksPerMc),
      _statRowHits(row_hits),
      _statRowMisses(row_misses)
{
    _pickEvent = std::make_unique<TickEvent>([this] { pick(); },
                                             "dram.pick");
}

std::uint32_t
DramDevice::bankOf(Addr addr) const
{
    // Consecutive rows stripe across banks, so streaming accesses
    // pipeline while same-row accesses stay in one bank's row buffer.
    return std::uint32_t((addr / _cfg.dramRowBytes) %
                         _banks.size());
}

Addr
DramDevice::rowOf(Addr addr) const
{
    return addr / _cfg.dramRowBytes;
}

void
DramDevice::access(Addr addr, bool is_write, Tick ready, Callback done)
{
    Req *req = _pool.acquire();
    req->addr = lineAlign(addr);
    req->isWrite = is_write;
    req->readyAt = std::max(ready, _eq.now());
    req->done = std::move(done);
    req->next = nullptr;
    if (_tail)
        _tail->next = req;
    else
        _head = req;
    _tail = req;
    ++_queuedCount;

    if (!_pickEvent->scheduled())
        _eq.schedule(*_pickEvent, req->readyAt);
    else if (_pickEvent->when() > req->readyAt)
        _eq.reschedule(*_pickEvent, req->readyAt);
}

void
DramDevice::issue(Req *prev, Req *req)
{
    if (prev)
        prev->next = req->next;
    else
        _head = req->next;
    if (_tail == req)
        _tail = prev;
    req->next = nullptr;
    --_queuedCount;

    Bank &bank = _banks[bankOf(req->addr)];
    const Addr row = rowOf(req->addr);
    const bool row_hit = bank.openRow == row;
    if (row_hit)
        _statRowHits.inc();
    else
        _statRowMisses.inc();
    bank.openRow = row;

    // The data bus serializes transfers; the bank then holds the
    // access for the row latency (hit or precharge+activate+access).
    const Tick start = std::max(_eq.now(), _busBusyUntil);
    _busBusyUntil = start + _transferCycles;
    _busCycles += _transferCycles;
    const Cycles lat = row_hit ? _cfg.dramRowHitLatency
                               : _cfg.dramRowMissLatency;
    const Tick done_at = start + _transferCycles + lat;
    bank.busyUntil = done_at;

    if (req->isWrite)
        ++_writes;
    else
        ++_reads;

    Callback done = std::move(req->done);
    req->done = nullptr;
    _pool.release(req);
    _eq.post(done_at, [done = std::move(done)]() mutable { done(); });
}

void
DramDevice::pick()
{
    const Tick now = _eq.now();

    // FR-FCFS-lite, restartable: issue as many ready requests as free
    // banks allow, row hits first (oldest hit wins), then oldest
    // ready-with-free-bank. Rescan after every issue -- issuing moves
    // bus/bank state, and the list is short (bounded by the MC's
    // outstanding DRAM ops).
    for (;;) {
        Req *hit_prev = nullptr;
        Req *hit = nullptr;
        Req *any_prev = nullptr;
        Req *any = nullptr;
        Req *prev = nullptr;
        for (Req *r = _head; r; prev = r, r = r->next) {
            if (r->readyAt > now)
                continue;
            const Bank &bank = _banks[bankOf(r->addr)];
            if (bank.busyUntil > now)
                continue;
            if (!any) {
                any = r;
                any_prev = prev;
            }
            if (!hit && bank.openRow == rowOf(r->addr)) {
                hit = r;
                hit_prev = prev;
            }
        }
        Req *chosen = hit ? hit : any;
        if (!chosen)
            break;
        issue(hit ? hit_prev : any_prev, chosen);
    }

    if (!_head)
        return;

    // Nothing issuable now: wake at the earliest readiness or bank
    // release among the still-queued requests.
    Tick wake = kTickNever;
    for (Req *r = _head; r; r = r->next) {
        const Tick bank_free = _banks[bankOf(r->addr)].busyUntil;
        wake = std::min(wake, std::max(r->readyAt, bank_free));
    }
    if (!_pickEvent->scheduled())
        _eq.schedule(*_pickEvent, std::max(wake, now + 1));
}

void
DramDevice::clear()
{
    while (_head) {
        Req *r = _head;
        _head = r->next;
        r->next = nullptr;
        r->done = nullptr;
        _pool.release(r);
    }
    _tail = nullptr;
    _queuedCount = 0;
    _eq.deschedule(*_pickEvent);
    for (Bank &b : _banks) {
        b.busyUntil = 0;
        b.openRow = ~Addr(0);
    }
    _busBusyUntil = 0;
}

} // namespace atomsim
