#include "mem/packet.hh"

namespace atomsim
{

const char *
msgName(MsgType type)
{
    switch (type) {
      case MsgType::GetS: return "GetS";
      case MsgType::GetX: return "GetX";
      case MsgType::Upgrade: return "Upgrade";
      case MsgType::PutM: return "PutM";
      case MsgType::Data: return "Data";
      case MsgType::DataExcl: return "DataExcl";
      case MsgType::DataLogged: return "DataLogged";
      case MsgType::Inv: return "Inv";
      case MsgType::InvAck: return "InvAck";
      case MsgType::FwdGetS: return "FwdGetS";
      case MsgType::FwdGetX: return "FwdGetX";
      case MsgType::FwdAckS: return "FwdAckS";
      case MsgType::FwdAckX: return "FwdAckX";
      case MsgType::Recall: return "Recall";
      case MsgType::RecallAck: return "RecallAck";
      case MsgType::WbAck: return "WbAck";
      case MsgType::LogWrite: return "LogWrite";
      case MsgType::LogAck: return "LogAck";
      case MsgType::FlushReq: return "FlushReq";
      case MsgType::FlushAck: return "FlushAck";
      case MsgType::MemRead: return "MemRead";
      case MsgType::MemWrite: return "MemWrite";
      case MsgType::RedoLog: return "RedoLog";
      case MsgType::Ctrl: return "Ctrl";
    }
    return "?";
}

std::uint32_t
msgFlits(MsgType type)
{
    switch (type) {
      case MsgType::Data:
      case MsgType::DataExcl:
      case MsgType::DataLogged:
      case MsgType::PutM:
      case MsgType::MemWrite:
      case MsgType::FlushReq:
      case MsgType::FwdAckS:
      case MsgType::FwdAckX:
      case MsgType::RecallAck:
        // 64 B payload + 1 header flit. The ack legs of a forward /
        // recall usually carry the surrendered copy; charging the
        // data-message size even for the rare empty-handed reply keeps
        // the flit count a pure function of the opcode.
        return 5;
      case MsgType::LogWrite:
      case MsgType::RedoLog:
        // 64 B payload + logged address + header.
        return 6;
      default:
        return 1;
    }
}

} // namespace atomsim
