/**
 * @file
 * NVM memory controller with kind-tagged requests and an ATOM write gate.
 *
 * Each controller owns one or two NvmChannels and per-channel read/write
 * queues with a read-priority arbiter (writes drain when the write queue
 * crosses a high-water mark or no reads are pending). The durable image
 * of memory is updated when a write completes at the device.
 *
 * When SystemConfig::hybridMode != NvmOnly the controller additionally
 * owns a DRAM tier (mem/dram_cache.hh + mem/dram_device.hh) consulted
 * before the NVM channel: reads probe the cache (hit = DRAM latency,
 * miss = NVM read + demand fill, dirty victims written back through
 * the ordinary gated write queue), DataWb writes are absorbed at DRAM
 * latency, and every durability-bearing write kind stays write-through
 * to NVM. An app-direct address window (setUncacheableWindow) bypasses
 * the tier entirely. The DRAM contents are volatile: powerFail drops
 * dirty cached lines, so only NVM-resident bytes survive into the
 * recovery image.
 *
 * Two hooks let the ATOM log manager (atom/logm.hh) attach:
 *
 *  - a WriteGate consulted when a *data* write is scheduled out of the
 *    controller; a locked line (its address sits in a not-yet-persisted
 *    record header) blocks until LogM persists the header (Section
 *    III-C / IV-C of the paper);
 *  - a fill observer used by the source-logging optimization to log
 *    read-exclusive fills at the controller (Section III-D).
 */

#ifndef ATOMSIM_MEM_MEMORY_CONTROLLER_HH
#define ATOMSIM_MEM_MEMORY_CONTROLLER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/dram_cache.hh"
#include "mem/dram_device.hh"
#include "mem/nvm_channel.hh"
#include "mem/phys_mem.hh"
#include "sim/callback.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/** Why a read was issued (stats + channel steering). */
enum class ReadKind : std::uint8_t
{
    Demand,   //!< cache fill
    LogRead,  //!< REDO backend reading log entries
};

/** Why a write was issued (stats, gating and channel steering). */
enum class WriteKind : std::uint8_t
{
    DataWb,       //!< L2 eviction writeback
    Flush,        //!< commit-time durable flush (clwb-like)
    LogData,      //!< ATOM undo-log entry data line
    LogHeader,    //!< ATOM record header line
    CriticalRegs, //!< ADR flush of LogM critical structures
    RedoLog,      //!< REDO log-area write
    RedoApply,    //!< REDO backend in-place update
    FwdMap,       //!< SSD-tier forwarding-map entry (data channel,
                  //!< never gated, never intercepted by the destage
                  //!< engine -- it IS the destage engine's traffic)
};

/**
 * One unrecoverable media read failure: the bounded retries of the
 * media-error model (SystemConfig::mediaErrorPer64k) ran out. The
 * controller surfaces these as structured records -- the read still
 * delivers the stored bytes (the model reports the uncorrectable
 * error instead of silently corrupting data), so a consumer decides
 * what a hard fault means for its run.
 */
struct MediaFaultRecord
{
    McId mc = 0;
    Addr addr = 0;
    Tick tick = 0;
    /** Device attempts consumed (1 initial + mediaRetryLimit). */
    std::uint32_t attempts = 0;
    ReadKind kind = ReadKind::Demand;

    /** One-line human-readable rendering for reports and logs. */
    std::string describe() const;
};

/**
 * Interface the ATOM LogM implements to enforce log -> data ordering.
 */
class WriteGate
{
  public:
    /** Continuation resuming a gated write; sized for the controller's
     * pooled-request capture, so consulting the gate allocates
     * nothing. */
    using UnlockCallback = InplaceCallback<48>;

    virtual ~WriteGate() = default;

    /**
     * Ask permission to write @p line_addr durably.
     *
     * @retval true  the line is not locked; write may proceed now.
     * @retval false the line is locked; @p on_unlock will be invoked
     *               once the covering record header has persisted.
     */
    virtual bool tryAcquire(Addr line_addr, UnlockCallback on_unlock) = 0;
};

class DestageEngine;

/** One NVM memory controller. */
class MemoryController
{
  public:
    /**
     * Fixed-capacity (non-allocating) completions. WriteCallback's
     * capacity matches a mesh packet's rider (mem/packet.hh) so acks
     * arriving by packet move straight into the write queue without
     * re-wrapping.
     */
    using ReadCallback = InplaceFunction<void(const Line &), 96>;
    using WriteCallback = InplaceCallback<64>;

    MemoryController(McId id, EventQueue &eq, const SystemConfig &cfg,
                     DataImage &nvm, StatSet &stats);

    McId id() const { return _id; }

    /**
     * Read one line from NVM.
     *
     * Forwards from a pending queued write to the same line if present
     * (the controller observes its own write queue).
     */
    void readLine(Addr addr, ReadKind kind, ReadCallback cb);

    /**
     * Write one line durably. @p cb fires when the device write
     * completes (the line is then recoverable after power failure).
     *
     * Data writes (DataWb / Flush / RedoApply) pass through the
     * installed WriteGate; log writes never do.
     */
    void writeLine(Addr addr, const Line &data, WriteKind kind,
                   WriteCallback cb);

    /**
     * Flush-ordering helper: invoke @p cb once any pending write to
     * @p addr has persisted (immediately if none is pending).
     */
    void whenLineDurable(Addr addr, WriteCallback cb);

    /** Install the ATOM write gate (nullptr to remove). */
    void setWriteGate(WriteGate *gate) { _gate = gate; }

    /**
     * Install the flash-tier destage engine (nullptr to remove). When
     * set, the engine sees every NVM-path access first: reads of pages
     * whose authoritative bytes moved to flash stall through the SSD
     * read path, and writes to pages mid-destage cancel or park per
     * the engine's state machine (mem/ssd_device.hh).
     */
    void setDestageEngine(DestageEngine *eng) { _destage = eng; }

    /** The installed destage engine (nullptr without a flash tier). */
    DestageEngine *destageEngine() const { return _destage; }

    /**
     * True if any line of the page at @p page_base has an accepted
     * but not-yet-durable write. The destage engine defers snapshots
     * of such pages: the DataImage still holds pre-write bytes until
     * device completion, so a snapshot taken now would destage stale
     * data and the racing write would then be silently lost.
     */
    bool hasPendingWriteInPage(Addr page_base) const;

    /**
     * App-direct partitioning: addresses in [base, end) bypass the
     * DRAM cache and talk straight to NVM (no-op without a DRAM
     * tier). The System derives the window from the AddressMap
     * (AddressMap::appDirectBase/appDirectEnd).
     */
    void
    setUncacheableWindow(Addr base, Addr end)
    {
        _directBase = base;
        _directEnd = end;
    }

    /** The DRAM tier (nullptr when hybridMode == NvmOnly). */
    DramCache *dramCache() { return _dram.get(); }
    DramDevice *dramDevice() { return _dramDev.get(); }

    /** Drop all queued work (power failure). In-flight writes that have
     * not completed at the device are lost, matching Section IV-D --
     * except under SystemConfig::tornWrites, where each write in
     * flight at the device commits a seeded word-aligned prefix
     * (NVM's 8-byte atomicity guarantee, nothing more). */
    void powerFail();

    /** Uncorrectable media read failures recorded so far (survives
     * power failure: the fault report is host-visible state). */
    const std::vector<MediaFaultRecord> &mediaFaults() const
    {
        return _mediaFaults;
    }

    /** Pending write count (tests + REDO backend pacing). */
    std::size_t pendingWrites() const { return _pendingWrites; }
    std::size_t pendingReads() const { return _pendingReads; }

    /** Aggregate channel-busy cycles (bandwidth utilization). */
    std::uint64_t channelBusyCycles() const;

    const SystemConfig &config() const { return _cfg; }

  private:
    /** The destage engine replays parked operations through the
     * private readNvm/writeNvm entry points: the parked op was already
     * counted and DRAM-routed when it first arrived, so re-entering
     * through the public API would double-count it. */
    friend class DestageEngine;

    /** Combine-overflow node: extra durability acks beyond the first
     * accumulated on a queued write (pooled, rare). */
    struct WcbNode
    {
        WcbNode *next = nullptr;
        WriteCallback cb;
    };

    /**
     * One queued request: a pooled intrusive node. The queues chain
     * requests through the embedded `next` pointer and the gate /
     * device-completion paths carry the raw node, so the controller's
     * steady state performs no queue-churn allocations (the old
     * std::deque chunks, per-request wcbs vector and the write gate's
     * shared_ptr park are all gone).
     */
    struct Request
    {
        Request *next = nullptr;
        bool isWrite = false;
        Addr addr = 0;
        Line data{};
        ReadKind rkind = ReadKind::Demand;
        WriteKind wkind = WriteKind::DataWb;
        ReadCallback rcb;
        WriteCallback wcb;          //!< first durability ack (inline)
        WcbNode *extra = nullptr;   //!< combine overflow chain
        std::uint64_t enqueueTick = 0;
        /** Acceptance order of the carried data (see PendingWrite). */
        std::uint64_t acceptSeq = 0;
    };

    /** Intrusive FIFO of pooled Requests. */
    struct ReqQueue
    {
        Request *head = nullptr;
        Request *tail = nullptr;
        std::size_t count = 0;

        bool empty() const { return head == nullptr; }

        void
        push_back(Request *r)
        {
            r->next = nullptr;
            if (tail)
                tail->next = r;
            else
                head = r;
            tail = r;
            ++count;
        }

        void
        push_front(Request *r)
        {
            r->next = head;
            head = r;
            if (!tail)
                tail = r;
            ++count;
        }

        Request *
        pop_front()
        {
            Request *r = head;
            head = r->next;
            if (!head)
                tail = nullptr;
            r->next = nullptr;
            --count;
            return r;
        }
    };

    struct ChannelState
    {
        ReqQueue readQ;
        ReqQueue writeQ;
        /** Recurring scheduler event; at most one kick pending per
         * channel (kickEvent->scheduled() is the guard). */
        std::unique_ptr<TickEvent> kickEvent;
    };

    /**
     * In-flight state of one DRAM-tier operation: a hit read's data
     * snapshot + completion, a miss's parked fill target, or an
     * absorbed write's completion ack. Pooled, and chained into
     * _dramActive so powerFail can reclaim slots whose continuations
     * went inert with the epoch bump.
     */
    struct DramOp
    {
        DramOp *next = nullptr;       //!< pool free-list link
        DramOp *activeNext = nullptr; //!< in-flight list link
        Addr addr = 0;
        Line data{};
        ReadCallback rcb;
        WriteCallback wcb;
    };

    /** Channel a request of this kind steers to. */
    std::uint32_t channelFor(bool is_log_traffic) const;

    static bool isLogTraffic(WriteKind kind);
    static bool isGated(WriteKind kind);

    /** True when the DRAM tier fronts @p addr (outside the app-direct
     * window). Only meaningful with a DRAM tier configured. */
    bool
    dramCacheable(Addr addr) const
    {
        return !inAddrWindow(addr, _directBase, _directEnd);
    }

    DramOp *acquireDramOp();
    void releaseDramOp(DramOp *op);

    /** Write a displaced dirty DRAM victim back to NVM (gated). */
    void writeBackVictim(const DramCache::Victim &victim);

    /**
     * Enqueue a read on the NVM channel path (the pre-hybrid
     * readLine body): forwarding from in-flight writes happens at
     * issue time.
     */
    void readNvm(Addr addr, ReadKind kind, ReadCallback cb);

    /**
     * Enqueue a write on the NVM channel path (the pre-hybrid
     * writeLine body): write combining, gate consultation at issue,
     * durable-image update and ack at device completion.
     */
    void writeNvm(Addr addr, const Line &data, WriteKind kind,
                  WriteCallback cb);

    Request *acquireReq();
    /** Scrub callbacks / overflow chain and return the node. */
    void releaseReq(Request *r);
    void addWcb(Request *r, WriteCallback cb);

    void kick(std::uint32_t ch);
    void scheduleKick(std::uint32_t ch, Tick when);
    void issueRead(std::uint32_t ch, Request *req);
    void issueWrite(std::uint32_t ch, Request *req);

    const char *statName() const { return _statName.c_str(); }

    McId _id;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    DataImage &_nvm;
    StatSet &_stats;
    std::string _statName;

    std::vector<NvmChannel> _channels;
    std::vector<ChannelState> _chState;
    FreeListPool<Request> _reqPool;
    FreeListPool<WcbNode> _wcbPool;
    WriteGate *_gate = nullptr;
    DestageEngine *_destage = nullptr;

    // --- Hybrid DRAM tier (null when hybridMode == NvmOnly) ----------
    std::unique_ptr<DramCache> _dram;
    std::unique_ptr<DramDevice> _dramDev;
    FreeListPool<DramOp> _dramOpPool;
    DramOp *_dramActive = nullptr;  //!< in-flight DRAM ops
    Addr _directBase = 0;  //!< app-direct (uncacheable) window
    Addr _directEnd = 0;

    /** Writes accepted but not yet durable, by line address: the
     * outstanding count plus the *newest* accepted data, so reads can
     * forward even while a write is on the device (popped from the
     * queue but not yet persisted -- a ~360-cycle window a chasing
     * demand read can land in).
     *
     * committedSeq orders same-line commits into the durable image by
     * acceptance: a write gate park can re-queue a blocked write ahead
     * of a later-accepted one (several writes to a locked line each
     * park in their own unlock continuation and are replayed through
     * stacked push_fronts, newest first), so the device can drain a
     * stale writeback *after* a newer commit flush of the same line.
     * Real controllers never reorder same-address writes; the stale
     * write still occupies its device slot, but its image update is
     * suppressed. Without this, the stale writeback silently clobbers
     * committed bytes whose undo record truncation just discarded --
     * an unrecoverable tear (the seeds-62/63/64 torn-payload bug). */
    struct PendingWrite
    {
        std::uint32_t count = 0;
        std::uint64_t committedSeq = 0;
        Line data{};
    };
    std::unordered_map<Addr, PendingWrite> _inflightWrites;
    std::uint64_t _acceptSeq = 0;  //!< write-acceptance order stamp
    /** Writes issued to the device but not yet completed, tracked
     * only under cfg.tornWrites: these are the writes a power
     * failure tears at a word boundary instead of discarding whole
     * (the posted completion lambdas alone hide them -- the epoch
     * bump cancels the completions before they can tell us what was
     * in flight). */
    std::vector<Request *> _deviceWrites;
    /** Uncorrectable media read failures (hard-fail fault report). */
    std::vector<MediaFaultRecord> _mediaFaults;
    /** Callbacks waiting on line durability. */
    std::unordered_map<Addr, std::vector<WriteCallback>> _durWaiters;

    std::size_t _pendingWrites = 0;
    std::size_t _pendingReads = 0;
    std::uint64_t _epoch = 0;  //!< bumped on powerFail to cancel events

    Counter &_statReads;
    Counter &_statLogReads;
    Counter &_statWrites;
    Counter &_statLogWrites;
    Counter &_statGateBlocks;
    Counter &_statDramCleanses;
    Counter &_statMediaRetries;
    Counter &_statMediaFail;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_MEMORY_CONTROLLER_HH
