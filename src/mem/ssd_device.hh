/**
 * @file
 * Flash/SSD third tier: NVMe-style queue pairs over a channel/die
 * timing model, plus the destage engine that migrates cold pages from
 * NVM to flash at ATOM log truncation.
 *
 * One SsdDevice per memory controller (SystemConfig::ssdTier), fronted
 * by per-channel submission/completion queue pairs — fixed-capacity
 * rings of pooled intrusive command nodes, the same FreeListPool /
 * InplaceFunction idiom as the controllers and the DRAM device. The
 * host side (the destage engine) submits page commands and rings a
 * doorbell; a poll-mode loop on the owning controller's EventQueue
 * fetches submissions, dispatches them to the channel/die timing model
 * (die tR/tPROG occupancy, channel bus transfer) and reaps completions
 * at poll ticks. Everything runs in the MC's simulation domain, so
 * sharded byte-identity is preserved by construction.
 *
 * The DestageEngine sits between LogM truncation and the device:
 *
 *  - cold log segments (buckets the log manager moved past) and cold
 *    data pages (pages of truncated updates beyond a watermark) are
 *    snapshotted from NVM and programmed to flash;
 *  - once the program completes, a 16-byte forwarding entry is written
 *    *durably* into an NVM-resident map region (AddressMap::ssdMapPage)
 *    through the ordinary controller write path; only after the entry
 *    is durable is the NVM page surrendered (scrubbed with a poison
 *    pattern — any path that wrongly reads NVM for a forwarded page
 *    surfaces as corruption instead of silently passing);
 *  - reads and writes of a forwarded page stall through the SSD read
 *    path: the engine parks them, promotes the page (flash read, NVM
 *    restore, durable entry clear) and replays them in arrival order.
 *
 * Crash safety is ordering, not luck: NVM stays authoritative until
 * the forwarding entry is durable, and each entry carries a checksum
 * so a torn entry write parses as invalid (= NVM authoritative).
 * Recovery rehydrates every valid entry (fwdmap::rehydrate) before the
 * log scans run, which is what makes a flash-resident log tail
 * replayable; rehydration is idempotent across a second crash.
 */

#ifndef ATOMSIM_MEM_SSD_DEVICE_HH
#define ATOMSIM_MEM_SSD_DEVICE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "mem/address_map.hh"
#include "mem/memory_controller.hh"
#include "mem/phys_mem.hh"
#include "sim/callback.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/**
 * Forwarding-map entry codec, shared between the destage engine and
 * recovery so both sides agree on what a durable entry means.
 *
 * An entry is 16 bytes: word 0 is the NVM page address with a valid
 * bit in bit 0 (pages are 4 KB aligned, so the bit is free); word 1
 * packs the flash page index (low 32 bits) and a checksum over both
 * (high 32 bits). NVM guarantees only 8-byte write atomicity, so a
 * power failure can tear the two words apart; the checksum makes any
 * torn combination parse as *invalid*, which the destage ordering
 * turns into "NVM is still authoritative" — always safe.
 */
namespace fwdmap
{

/** Entry checksum; never zero, so an all-zero entry is invalid. */
inline std::uint32_t
checksum(std::uint64_t w0, std::uint32_t flash_page)
{
    std::uint64_t x =
        w0 ^ (std::uint64_t(flash_page) << 1) ^ 0xA70DDE57A9E5ull;
    x *= 0x9E3779B97F4A7C15ull;
    x ^= x >> 29;
    return std::uint32_t(x >> 32) | 1u;
}

/** Encode a (page -> flash page) mapping into the two entry words. */
inline void
encode(Addr page, std::uint32_t flash_page, std::uint64_t &w0,
       std::uint64_t &w1)
{
    w0 = page | 1;
    w1 = std::uint64_t(flash_page) |
         (std::uint64_t(checksum(page | 1, flash_page)) << 32);
}

/** Decode an entry; nullopt if invalid (unset, cleared, or torn). */
inline std::optional<std::pair<Addr, std::uint32_t>>
decode(std::uint64_t w0, std::uint64_t w1)
{
    if ((w0 & 1) == 0)
        return std::nullopt;
    const auto flash_page = std::uint32_t(w1);
    if (std::uint32_t(w1 >> 32) != checksum(w0, flash_page))
        return std::nullopt;
    return std::make_pair(Addr(w0 & ~Addr(1)), flash_page);
}

/**
 * Restore every valid forwarding entry of controller @p mc into the
 * NVM image: copy the flash page back and clear the entry. Runs
 * functionally at recovery time, *before* the log scans, so a
 * flash-resident log tail (and any forwarded data page) is back in
 * place when RecoveryManager / RedoRecovery walk the image. Clearing
 * as we go makes a crash *during* recovery harmless: a second pass
 * re-copies whatever entries were still valid — byte-idempotent.
 *
 * @return pages rehydrated
 */
std::uint32_t rehydrate(DataImage &nvm, const AddressMap &amap, McId mc,
                        const DataImage &flash);

} // namespace fwdmap

/**
 * One controller's SSD slice: queue pairs + channel/die timing + a
 * non-volatile flash DataImage (survives powerFail; the rings and
 * in-flight commands do not).
 */
class SsdDevice
{
  public:
    /** One page command: a pooled intrusive node. */
    struct Cmd
    {
        Cmd *next = nullptr;
        bool isWrite = false;
        std::uint32_t flashPage = 0;
        std::array<std::uint8_t, kPageBytes> data{};
        /** Fires at the reaping poll tick; the node is released by the
         * device right after, so consumers copy what they need out. */
        InplaceFunction<void(Cmd &), 32> done;
    };

    SsdDevice(McId id, EventQueue &eq, const SystemConfig &cfg,
              StatSet &stats);

    /** Queue pairs (one per flash channel). */
    std::uint32_t numQps() const { return _cfg.ssdChannels; }

    /** Channel (= queue pair) a flash page's commands steer to. */
    std::uint32_t qpOf(std::uint32_t flash_page) const
    {
        return flash_page % _cfg.ssdChannels;
    }

    Cmd *acquireCmd();
    void releaseCmd(Cmd *cmd);

    /**
     * Push @p cmd onto queue pair @p qp's submission ring. Fails (and
     * does NOT take ownership) when the pair's outstanding commands
     * would exceed the queue depth — the bound that keeps the
     * completion ring from ever overflowing. Nothing executes until
     * the doorbell rings.
     */
    bool submit(std::uint32_t qp, Cmd *cmd);

    /** Ring the submission doorbell: arms the poll loop. */
    void ringDoorbell(std::uint32_t qp);

    /** The flash image (non-volatile; recovery reads through it). */
    const DataImage &flash() const { return _flash; }

    /** Drop rings and in-flight commands; keep the flash image. */
    void powerFail();

    // --- introspection (tests / benches) -----------------------------
    std::uint32_t outstanding(std::uint32_t qp) const
    {
        return _qps[qp].outstanding;
    }
    std::size_t sqDepth(std::uint32_t qp) const { return _qps[qp].sqCount; }
    std::size_t cqDepth(std::uint32_t qp) const { return _qps[qp].cqCount; }
    std::uint32_t totalOutstanding() const;
    std::size_t poolAllocated() const { return _pool.allocated(); }
    std::size_t poolFree() const { return _pool.idle(); }
    std::uint64_t reads() const { return _reads; }
    std::uint64_t programs() const { return _programs; }

  private:
    /** Fixed-capacity SQ/CQ ring pair; capacity = ssdQueueDepth. */
    struct Qp
    {
        std::vector<Cmd *> sq;
        std::vector<Cmd *> cq;
        std::size_t sqHead = 0, sqTail = 0, sqCount = 0;
        std::size_t cqHead = 0, cqTail = 0, cqCount = 0;
        /** Commands submitted and not yet reaped (SQ + device + CQ). */
        std::uint32_t outstanding = 0;
    };

    void poll();
    void dispatch(std::uint32_t qp, Cmd *cmd);
    void onDeviceDone(std::uint32_t qp, Cmd *cmd, std::uint64_t epoch);

    McId _id;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    const Cycles _xferCycles;

    DataImage _flash;  //!< non-volatile: survives powerFail
    std::vector<Qp> _qps;
    FreeListPool<Cmd> _pool;
    /** Commands at the device (between fetch and completion); tracked
     * so powerFail can reclaim their nodes under the epoch guard. */
    std::vector<Cmd *> _inDevice;

    std::vector<Tick> _chanFree;  //!< per-channel bus free time
    std::vector<Tick> _dieFree;   //!< per-(channel,die) free time

    TickEvent _pollEvent;
    std::uint64_t _epoch = 0;
    std::uint64_t _reads = 0;
    std::uint64_t _programs = 0;

    Counter &_statReads;
    Counter &_statPrograms;
    Counter &_statSqStalls;
};

/**
 * Per-controller destage engine: LogM truncation hooks on one side,
 * the controller's NVM read/write intercepts on the other, the SSD
 * queue pairs underneath. Lives entirely in the MC's domain.
 */
class DestageEngine
{
  public:
    /** Lifecycle of a page in the destage pipeline. */
    enum class PageState : std::uint8_t
    {
        Programming,  //!< flash program in flight; NVM authoritative
        MapWriting,   //!< program done; forwarding entry write in NVM
        Forwarded,    //!< entry durable; flash authoritative
        Promoting,    //!< flash read in flight (access to a forwarded
                      //!< page); NVM restore + entry clear follow
        Clearing,     //!< durable entry clear in flight
    };

    DestageEngine(McId id, EventQueue &eq, const SystemConfig &cfg,
                  const AddressMap &amap, MemoryController &ctrl,
                  SsdDevice &ssd, DataImage &nvm, StatSet &stats);

    // --- LogM hooks --------------------------------------------------

    /** A log bucket went cold (the AUS moved to a fresh bucket). */
    void onLogSegmentCold(Addr bucket_page);

    /**
     * An update truncated: its data pages join the cold LRU (destaged
     * beyond ssdColdPageWatermark, oldest first) and its log buckets
     * are dropped from the pipeline (freed buckets must not linger as
     * forwarded pages — recovery's sequence window already rejects
     * their stale records). @p done is the truncation completion:
     * strict fires it immediately; balanced/eventual park it until the
     * un-destaged backlog is at most ssdMaxDestageBacklog.
     */
    void onTruncate(std::vector<Addr> data_pages,
                    std::vector<Addr> log_pages,
                    std::function<void()> done);

    // --- controller intercepts (top of readNvm / writeNvm) -----------

    /**
     * @retval true the access was absorbed (parked; it replays through
     *              the controller once the page is promoted)
     * @retval false NVM is authoritative; proceed normally
     */
    bool interceptRead(Addr addr, ReadKind kind,
                       MemoryController::ReadCallback &cb);
    bool interceptWrite(Addr addr, const Line &data, WriteKind kind,
                        MemoryController::WriteCallback &cb);

    /** Drop all volatile pipeline state (the durable NVM map is the
     * truth a crash leaves behind). */
    void powerFail();

    // --- introspection (tests / benches / Runner) --------------------

    /** Destages in flight (Programming + MapWriting). */
    std::uint32_t destagesInFlight() const { return _inFlight; }

    /** Un-destaged backlog the balanced/eventual policies bound. */
    std::size_t backlog() const;

    /** Pipeline state of @p page, if it is in the pipeline at all. */
    std::optional<PageState> pageState(Addr page) const;

    /** Pages currently forwarded (flash-authoritative). */
    std::uint32_t forwardedPages() const;

    /** Force a destage attempt (tests). @return started. */
    bool requestDestage(Addr page, bool is_log);

    std::uint64_t pagesDestaged() const { return _pagesDestaged; }
    std::uint64_t promotions() const { return _promotionsDone; }

  private:
    /** One parked access waiting for its page to be promoted. */
    struct ParkedOp
    {
        bool isWrite = false;
        Addr addr = 0;
        Line data{};
        ReadKind rkind = ReadKind::Demand;
        WriteKind wkind = WriteKind::DataWb;
        MemoryController::ReadCallback rcb;
        MemoryController::WriteCallback wcb;
    };

    struct PageRec
    {
        PageState state = PageState::Programming;
        bool isLog = false;
        bool cancel = false;     //!< Programming: a write landed
        bool dropOnMap = false;  //!< MapWriting: truncate wants a drop
        std::uint32_t slot = 0;
        std::uint32_t flashPage = 0;
        std::vector<ParkedOp> parked;
    };

    /** Forwarding-map slot mirror (the durable truth is in NVM). */
    struct MapSlot
    {
        Addr page = 0;
        std::uint32_t flashPage = 0;
        /** True when the entry belongs in the durable map: set when
         * the flash program completes (never before — composing a
         * line from an unprogrammed slot could persist an entry that
         * points at garbage flash), cleared when the clear issues. */
        bool mapped = false;
    };

    enum class Attempt : std::uint8_t { Started, Defer, Skip };

    Attempt tryDestage(Addr page, bool is_log);
    void onProgramDone(Addr page);
    void onMapDurable(Addr page);
    void startPromotion(Addr page);
    void onPromoteRead(Addr page, const std::uint8_t *data);
    void startClear(Addr page);
    void onClearDurable(Addr page);
    void dropLogPage(Addr page);
    void touchCold(Addr page);
    void maybeDestage();
    void drainBoundWaiters();
    void schedulePump();
    void pump();

    Addr mapLineAddr(std::uint32_t slot) const;
    Line composeMapLine(std::uint32_t line_idx) const;
    void writeMapLine(std::uint32_t slot,
                      MemoryController::WriteCallback cb);
    void scrubPage(Addr page);

    McId _id;
    EventQueue &_eq;
    const SystemConfig &_cfg;
    const AddressMap &_amap;
    MemoryController &_ctrl;
    SsdDevice &_ssd;
    DataImage &_nvm;

    std::unordered_map<Addr, PageRec> _pages;
    std::vector<MapSlot> _slots;
    std::vector<std::uint32_t> _freeSlots;  //!< pop smallest first
    std::vector<std::uint32_t> _freeFlash;

    std::vector<Addr> _coldLru;         //!< truncate order, oldest first
    std::vector<Addr> _pendingColdLog;  //!< cold buckets awaiting destage
    std::vector<Addr> _promoteRetry;    //!< promotions that hit a full SQ
    std::vector<std::function<void()>> _boundWaiters;

    std::uint32_t _inFlight = 0;
    std::uint64_t _pagesDestaged = 0;
    std::uint64_t _promotionsDone = 0;

    TickEvent _pumpEvent;

    Counter &_statPages;
    Counter &_statLogPages;
    Counter &_statPromotions;
    Counter &_statCancelled;
    Counter &_statTruncWaits;
    Counter &_statStalls;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_SSD_DEVICE_HH
