/**
 * @file
 * Mesh packets: message kinds, payload, and the typed completion.
 *
 * A Packet is an intrusive, pool-owned node: the mesh chains packets
 * through the embedded `next` pointer into per-link delivery queues, so
 * sending a message performs no allocation in steady state. Delivery is
 * a *typed completion*: the packet names a receiver (a MeshSink) and an
 * opcode (MsgType); the receiver dispatches on the opcode and reads the
 * payload fields. Messages that genuinely need a dynamic continuation
 * (acks that resume a stored-away caller, RPC-style legs into the
 * memory controller) instead carry a fixed-capacity MeshCallback --
 * still non-allocating, enforced at compile time.
 *
 * Payload fields are a small union-of-purposes (addr/core/arg/flags +
 * one cache line); each opcode documents which fields it uses at its
 * send site.
 */

#ifndef ATOMSIM_MEM_PACKET_HH
#define ATOMSIM_MEM_PACKET_HH

#include <cstdint>

#include "cache/cache_line.hh"
#include "mem/phys_mem.hh"
#include "sim/callback.hh"
#include "sim/types.hh"

namespace atomsim
{

/** Coherence / logging message kinds. */
enum class MsgType : std::uint8_t
{
    GetS,        //!< read request (load miss)
    GetX,        //!< read-exclusive request (store miss)
    Upgrade,     //!< S->M upgrade request
    PutM,        //!< dirty writeback L1 -> L2
    Data,        //!< data response (shared)
    DataExcl,    //!< data response (exclusive/modified grant)
    DataLogged,  //!< data response with log bit pre-set (source logging)
    Inv,         //!< invalidate a sharer (home -> sharer L1)
    InvAck,      //!< invalidation acknowledgement (L1 -> home)
    FwdGetS,     //!< forward read to the modified owner's L1
    FwdGetX,     //!< forward read-exclusive to the modified owner's L1
    FwdAckS,     //!< owner's reply to a FwdGetS (L1 -> home)
    FwdAckX,     //!< owner's reply to a FwdGetX (L1 -> home)
    Recall,      //!< surrender request on inclusion eviction / flush
    RecallAck,   //!< recall reply with the owner's copy (L1 -> home)
    WbAck,       //!< writeback acknowledgement (home -> L1)
    LogWrite,    //!< undo-log entry: address + 64 B old value
    LogAck,      //!< log entry accepted/persisted acknowledgement
    FlushReq,    //!< durable writeback request (clwb-like)
    FlushAck,    //!< flush completion
    MemRead,     //!< L2 miss fill request to the memory controller
    MemWrite,    //!< data write to NVM
    RedoLog,     //!< redo-log entry (new value) to the MC log buffer
    Ctrl,        //!< small control message (begin/end/truncate)
};

/** Printable name for a message type. */
const char *msgName(MsgType type);

/**
 * Number of 16-byte flits for a message of a given kind.
 *
 * Control messages are a single flit; data-bearing messages carry a
 * 64-byte line plus a header; log writes additionally carry the logged
 * address.
 */
std::uint32_t msgFlits(MsgType type);

struct Packet;

/**
 * Endpoint of a typed mesh delivery. Implemented by the L1 caches, the
 * L2 tiles, the memory-controller ports and the LogI front end; the
 * implementation switches on pkt.type.
 */
class MeshSink
{
  public:
    virtual void meshDeliver(Packet &pkt) = 0;

  protected:
    ~MeshSink() = default;
};

/**
 * Inline continuation a packet may carry instead of (or alongside) a
 * typed receiver. Sized for the largest rider: a LogAck carrying the
 * store path's own 48-byte completion object.
 */
static constexpr std::size_t kMeshCallbackBytes = 64;
using MeshCallback = InplaceCallback<kMeshCallbackBytes>;

/** One in-flight mesh message (pool node; see net/mesh.hh). */
struct Packet
{
    // --- intrusive delivery-queue linkage (owned by the mesh) ---------
    Packet *next = nullptr;
    Tick arrival = 0;        //!< tail-flit arrival tick at dst
    std::uint64_t seq = 0;   //!< FIFO slot stamped at send time
    /** Pool the node was drawn from (sharded runs keep one packet pool
     * per domain; freed packets are routed home at window barriers).
     * Assigned at acquire time and deliberately not scrubbed. */
    std::uint16_t pool = 0;

    // --- routing ------------------------------------------------------
    MsgType type = MsgType::Ctrl;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;

    // --- completion ---------------------------------------------------
    MeshSink *receiver = nullptr;  //!< typed target (preferred)
    MeshCallback cb;               //!< delivery action / ack rider

    // --- payload (opcode-dependent) -----------------------------------
    CoreId core = 0;          //!< requesting core
    Addr addr = 0;            //!< line address
    std::uint32_t arg = 0;    //!< AUS slot / tile id / target core / kind
    bool flag = false;        //!< in_atomic / has_data / exclusive
    bool logged = false;      //!< log bit pre-set (source logging)
    bool dirty = false;       //!< recalled/forwarded copy was dirty
    CoherenceState grant = CoherenceState::Invalid;
    Line data{};              //!< line payload for data-bearing messages

    /** Scrub the completion and scalar payload fields. The data line
     * is deliberately left untouched (zeroing 64 bytes per message is
     * wasted work): senders of data-bearing types must assign it. */
    void
    reset()
    {
        next = nullptr;
        receiver = nullptr;
        cb = nullptr;
        core = 0;
        addr = 0;
        arg = 0;
        flag = false;
        logged = false;
        dirty = false;
        grant = CoherenceState::Invalid;
    }
};

} // namespace atomsim

#endif // ATOMSIM_MEM_PACKET_HH
