/**
 * @file
 * Message kinds exchanged between system components.
 *
 * atomsim delivers messages as callbacks through the mesh (see
 * net/mesh.hh), so Packet is deliberately small: it exists to give every
 * message a type (for stats and tracing) and a flit count (for network
 * serialization). The protocol payload travels in the bound callback.
 */

#ifndef ATOMSIM_MEM_PACKET_HH
#define ATOMSIM_MEM_PACKET_HH

#include <cstdint>

#include "sim/types.hh"

namespace atomsim
{

/** Coherence / logging message kinds. */
enum class MsgType : std::uint8_t
{
    GetS,        //!< read request (load miss)
    GetX,        //!< read-exclusive request (store miss)
    Upgrade,     //!< S->M upgrade request
    PutM,        //!< dirty writeback L1 -> L2
    Data,        //!< data response (shared)
    DataExcl,    //!< data response (exclusive/modified grant)
    DataLogged,  //!< data response with log bit pre-set (source logging)
    Inv,         //!< invalidate a sharer
    InvAck,      //!< invalidation acknowledgement
    FwdGetS,     //!< forward read to the modified owner
    FwdGetX,     //!< forward read-exclusive to the modified owner
    WbAck,       //!< writeback acknowledgement
    LogWrite,    //!< undo-log entry: address + 64 B old value
    LogAck,      //!< log entry accepted/persisted acknowledgement
    FlushReq,    //!< durable writeback request (clwb-like)
    FlushAck,    //!< flush completion
    MemRead,     //!< L2 miss fill request to the memory controller
    MemWrite,    //!< data write to NVM
    RedoLog,     //!< redo-log entry (new value) to the MC log buffer
    Ctrl,        //!< small control message (begin/end/truncate)
};

/** Printable name for a message type. */
const char *msgName(MsgType type);

/**
 * Number of 16-byte flits for a message of a given kind.
 *
 * Control messages are a single flit; data-bearing messages carry a
 * 64-byte line plus a header; log writes additionally carry the logged
 * address.
 */
std::uint32_t msgFlits(MsgType type);

} // namespace atomsim

#endif // ATOMSIM_MEM_PACKET_HH
