#include "mem/dram_cache.hh"

#include "sim/logging.hh"

namespace atomsim
{

DramCache::DramCache(const SystemConfig &cfg, StatSet &stats,
                     const std::string &stat_group)
    : _assoc(cfg.dramCacheAssoc),
      _statHits(stats.counter(stat_group, "dram_hits")),
      _statMisses(stats.counter(stat_group, "dram_misses")),
      _statWrAbsorbed(stats.counter(stat_group, "dram_wr_absorbed")),
      _statWbEvictions(stats.counter(stat_group, "wb_evictions"))
{
    const Addr bytes = Addr(cfg.dramCacheMBPerMc) * 1024 * 1024;
    _sets = std::uint32_t(bytes / (Addr(_assoc) * kLineBytes));
    panic_if(_sets == 0, "DRAM cache too small for its associativity");
    _ways.resize(std::size_t(_sets) * _assoc);
    _data.resize(std::size_t(_sets) * _assoc);
}

std::uint32_t
DramCache::setOf(Addr line) const
{
    return std::uint32_t(lineNumber(line) % _sets);
}

DramCache::Way *
DramCache::find(Addr line)
{
    Way *base = &_ways[std::size_t(setOf(line)) * _assoc];
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            return &base[w];
    }
    return nullptr;
}

const DramCache::Way *
DramCache::find(Addr line) const
{
    return const_cast<DramCache *>(this)->find(line);
}

Line &
DramCache::dataOf(const Way *way)
{
    return _data[std::size_t(way - _ways.data())];
}

bool
DramCache::contains(Addr addr) const
{
    return find(lineAlign(addr)) != nullptr;
}

bool
DramCache::isDirty(Addr addr) const
{
    const Way *way = find(lineAlign(addr));
    return way && way->dirty;
}

const Line *
DramCache::peek(Addr addr) const
{
    const Way *way = find(lineAlign(addr));
    if (!way)
        return nullptr;
    return &const_cast<DramCache *>(this)->dataOf(way);
}

bool
DramCache::read(Addr addr, Line &out)
{
    Way *way = find(lineAlign(addr));
    if (!way) {
        _statMisses.inc();
        return false;
    }
    _statHits.inc();
    way->lru = ++_useStamp;
    out = dataOf(way);
    return true;
}

DramCache::Victim
DramCache::fill(Addr addr, const Line &data)
{
    const Addr line = lineAlign(addr);
    Victim victim;
    if (Way *way = find(line)) {
        // An absorbed write raced the NVM read: the cached copy is
        // newer than the fill data; keep it.
        way->lru = ++_useStamp;
        return victim;
    }
    Way *base = &_ways[std::size_t(setOf(line)) * _assoc];
    Way *slot = nullptr;
    for (std::uint32_t w = 0; w < _assoc; ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
        if (!slot || base[w].lru < slot->lru)
            slot = &base[w];
    }
    if (slot->valid && slot->dirty) {
        victim.dirty = true;
        victim.addr = slot->tag;
        victim.data = dataOf(slot);
        _statWbEvictions.inc();
    }
    slot->tag = line;
    slot->valid = true;
    slot->dirty = false;
    slot->lru = ++_useStamp;
    dataOf(slot) = data;
    return victim;
}

DramCache::Victim
DramCache::absorb(Addr addr, const Line &data)
{
    const Addr line = lineAlign(addr);
    _statWrAbsorbed.inc();
    if (Way *way = find(line)) {
        way->dirty = true;
        way->lru = ++_useStamp;
        dataOf(way) = data;
        return Victim{};
    }
    Victim victim = fill(line, data);
    find(line)->dirty = true;
    return victim;
}

void
DramCache::writeThrough(Addr addr, const Line &data)
{
    if (Way *way = find(lineAlign(addr))) {
        way->lru = ++_useStamp;
        way->dirty = false;  // NVM is receiving these very bytes
        dataOf(way) = data;
    }
}

void
DramCache::markClean(Addr addr)
{
    if (Way *way = find(lineAlign(addr)))
        way->dirty = false;
}

void
DramCache::invalidateAll()
{
    for (Way &w : _ways) {
        w.valid = false;
        w.dirty = false;
        w.lru = 0;
    }
    _useStamp = 0;
}

std::size_t
DramCache::dirtyLines() const
{
    std::size_t n = 0;
    for (const Way &w : _ways) {
        if (w.valid && w.dirty)
            ++n;
    }
    return n;
}

} // namespace atomsim
