#include "mem/memory_controller.hh"

#include <algorithm>
#include <cstdio>

#include "mem/ssd_device.hh"
#include "sim/fault.hh"
#include "sim/logging.hh"

namespace atomsim
{

std::string
MediaFaultRecord::describe() const
{
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "media hard-fail: mc%u %s read of 0x%llx at tick %llu "
                  "(%u attempts)",
                  unsigned(mc), kind == ReadKind::LogRead ? "log" : "demand",
                  (unsigned long long)addr, (unsigned long long)tick,
                  attempts);
    return buf;
}

MemoryController::MemoryController(McId id, EventQueue &eq,
                                   const SystemConfig &cfg, DataImage &nvm,
                                   StatSet &stats)
    : _id(id),
      _eq(eq),
      _cfg(cfg),
      _nvm(nvm),
      _stats(stats),
      _statName("mc" + std::to_string(id)),
      _statReads(stats.counter(_statName, "demand_reads")),
      _statLogReads(stats.counter(_statName, "log_reads")),
      _statWrites(stats.counter(_statName, "data_writes")),
      _statLogWrites(stats.counter(_statName, "log_writes")),
      _statGateBlocks(stats.counter(_statName, "gate_blocks")),
      _statDramCleanses(stats.counter(_statName, "dram_cleanses")),
      _statMediaRetries(stats.counter(_statName, "media_retries")),
      _statMediaFail(stats.counter(_statName, "media_fail"))
{
    for (std::uint32_t c = 0; c < cfg.channelsPerMc; ++c) {
        _channels.emplace_back(
            eq, cfg, std::uint64_t(id) * cfg.channelsPerMc + c);
    }
    _chState.resize(cfg.channelsPerMc);
    for (std::uint32_t c = 0; c < cfg.channelsPerMc; ++c) {
        _chState[c].kickEvent = std::make_unique<TickEvent>(
            [this, c] { kick(c); }, "mc.kick");
    }
    if (cfg.hybrid()) {
        _dram = std::make_unique<DramCache>(cfg, stats, _statName);
        _dramDev = std::make_unique<DramDevice>(
            eq, cfg, stats.counter(_statName, "row_hits"),
            stats.counter(_statName, "row_misses"));
    }
}

bool
MemoryController::isLogTraffic(WriteKind kind)
{
    switch (kind) {
      case WriteKind::LogData:
      case WriteKind::LogHeader:
      case WriteKind::CriticalRegs:
      case WriteKind::RedoLog:
        return true;
      default:
        return false;
    }
}

bool
MemoryController::isGated(WriteKind kind)
{
    switch (kind) {
      case WriteKind::DataWb:
      case WriteKind::Flush:
      case WriteKind::RedoApply:
        return true;
      default:
        return false;
    }
}

std::uint32_t
MemoryController::channelFor(bool is_log_traffic) const
{
    // In the two-channel configuration (the paper's *-2C runs) channel 1
    // is dedicated to log traffic; channel 0 carries data.
    if (_channels.size() >= 2 && is_log_traffic)
        return 1;
    return 0;
}

MemoryController::Request *
MemoryController::acquireReq()
{
    return _reqPool.acquire();
}

void
MemoryController::releaseReq(Request *r)
{
    r->rcb = nullptr;
    r->wcb = nullptr;
    while (r->extra) {
        WcbNode *n = r->extra;
        r->extra = n->next;
        n->next = nullptr;
        n->cb = nullptr;
        _wcbPool.release(n);
    }
    _reqPool.release(r);
}

void
MemoryController::addWcb(Request *r, WriteCallback cb)
{
    if (!r->wcb) {
        r->wcb = std::move(cb);
        return;
    }
    WcbNode *n = _wcbPool.acquire();
    n->cb = std::move(cb);
    // Append so acks fire in registration order.
    n->next = nullptr;
    WcbNode **tail = &r->extra;
    while (*tail)
        tail = &(*tail)->next;
    *tail = n;
}

MemoryController::DramOp *
MemoryController::acquireDramOp()
{
    DramOp *op = _dramOpPool.acquire();
    op->activeNext = _dramActive;
    _dramActive = op;
    return op;
}

void
MemoryController::releaseDramOp(DramOp *op)
{
    DramOp *prev = nullptr;
    DramOp *cur = _dramActive;
    while (cur && cur != op) {
        prev = cur;
        cur = cur->activeNext;
    }
    panic_if(!cur, "releasing a DramOp that is not in flight");
    if (prev)
        prev->activeNext = op->activeNext;
    else
        _dramActive = op->activeNext;
    op->activeNext = nullptr;
    op->rcb = nullptr;
    op->wcb = nullptr;
    _dramOpPool.release(op);
}

void
MemoryController::writeBackVictim(const DramCache::Victim &victim)
{
    // Displaced dirty DRAM line: push it to NVM through the ordinary
    // write queue. DataWb keeps it behind the ATOM write gate -- the
    // absorbed write that dirtied it never consulted the gate (DRAM is
    // volatile, so Invariant 2 was not at stake), but this write
    // reaches NVM and must wait out a not-yet-persisted record header
    // like any other data writeback.
    writeNvm(victim.addr, victim.data, WriteKind::DataWb,
             WriteCallback{});
}

void
MemoryController::readLine(Addr addr, ReadKind kind, ReadCallback cb)
{
    addr = lineAlign(addr);
    if (kind == ReadKind::Demand)
        _statReads.inc();
    else
        _statLogReads.inc();

    if (_dram && dramCacheable(addr)) {
        DramOp *op = acquireDramOp();
        op->addr = addr;
        op->rcb = std::move(cb);
        if (_dram->read(addr, op->data)) {
            // DRAM hit: the data snapshot rides the op; completion at
            // device timing, never touching the NVM channel.
            ++_pendingReads;
            const std::uint64_t epoch = _epoch;
            _dramDev->access(
                addr, false, _eq.now() + _cfg.mcFrontendLatency,
                [this, op, epoch] {
                    if (epoch != _epoch)
                        return;
                    --_pendingReads;
                    ReadCallback done = std::move(op->rcb);
                    const Line data = op->data;
                    releaseDramOp(op);
                    done(data);
                });
            return;
        }
        // Miss: read NVM as usual, demand-fill the cache when the
        // data returns (unless an absorbed write landed a newer copy
        // meanwhile), and charge the fill's bank occupancy.
        readNvm(addr, kind, ReadCallback([this, op](const Line &data) {
            // Fill with the *newest* accepted bytes, not the read's
            // issue-time snapshot: a write-through write of this line
            // (a log write, a REDO apply -- traffic that does not
            // come from the home tile and so is not FIFO-ordered
            // against the read) can be accepted during the NVM
            // device window. Its writeThrough() was a no-op while the
            // line was absent, so installing the snapshot would leave
            // a permanently stale clean line for later reads to hit.
            const auto fwd = _inflightWrites.find(op->addr);
            const Line &newest = fwd != _inflightWrites.end()
                                     ? fwd->second.data
                                     : data;
            const DramCache::Victim victim = _dram->fill(op->addr,
                                                         newest);
            if (victim.dirty)
                writeBackVictim(victim);
            _dramDev->access(op->addr, true, _eq.now(),
                             DramDevice::Callback([] {}));
            // If an absorbed write raced the fill, fill() kept the
            // (even newer) cached copy -- it is the authoritative
            // answer.
            const Line *cached = _dram->peek(op->addr);
            const Line result = cached ? *cached : newest;
            ReadCallback done = std::move(op->rcb);
            releaseDramOp(op);
            done(result);
        }));
        return;
    }

    readNvm(addr, kind, std::move(cb));
}

bool
MemoryController::hasPendingWriteInPage(Addr page_base) const
{
    if (_inflightWrites.empty())
        return false;
    for (Addr a = page_base; a < page_base + kPageBytes; a += kLineBytes) {
        if (_inflightWrites.count(a))
            return true;
    }
    return false;
}

void
MemoryController::readNvm(Addr addr, ReadKind kind, ReadCallback cb)
{
    // Flash tier: a read of a page whose authoritative bytes moved to
    // flash parks in the destage engine and stalls through the SSD
    // read path (promotion); it re-enters here once NVM is truth
    // again.
    if (_destage && _destage->interceptRead(addr, kind, cb))
        return;

    const std::uint32_t ch = channelFor(kind == ReadKind::LogRead);
    Request *req = acquireReq();
    req->isWrite = false;
    req->addr = addr;
    req->rkind = kind;
    req->rcb = std::move(cb);
    req->enqueueTick = _eq.now();
    _chState[ch].readQ.push_back(req);
    ++_pendingReads;
    scheduleKick(ch, _eq.now() + _cfg.mcFrontendLatency);
}

void
MemoryController::writeLine(Addr addr, const Line &data, WriteKind kind,
                            WriteCallback cb)
{
    addr = lineAlign(addr);

    if (_dram && dramCacheable(addr)) {
        if (kind == WriteKind::DataWb) {
            // Absorb the eviction writeback at DRAM latency. Its
            // completion has never been a durability promise (commit
            // persistence travels as Flush), so acking from volatile
            // DRAM is architecturally honest -- and exactly what
            // powerFail dropping the dirty line models.
            const DramCache::Victim victim = _dram->absorb(addr, data);
            if (victim.dirty)
                writeBackVictim(victim);
            DramOp *op = acquireDramOp();
            op->addr = addr;
            if (cb)
                op->wcb = std::move(cb);
            ++_pendingWrites;
            const std::uint64_t epoch = _epoch;
            _dramDev->access(
                addr, true, _eq.now() + _cfg.mcFrontendLatency,
                [this, op, epoch] {
                    if (epoch != _epoch)
                        return;
                    --_pendingWrites;
                    WriteCallback done = std::move(op->wcb);
                    releaseDramOp(op);
                    if (done)
                        done();
                });
            return;
        }
        // Durability-bearing kinds stay write-through: refresh the
        // cached copy (clean -- NVM receives these very bytes) and
        // let the NVM completion drive the ack.
        _dram->writeThrough(addr, data);
    }

    writeNvm(addr, data, kind, std::move(cb));
}

void
MemoryController::writeNvm(Addr addr, const Line &data, WriteKind kind,
                           WriteCallback cb)
{
    // Flash tier: a write to a page mid-destage cancels the destage
    // (snapshot-phase) or parks until NVM is authoritative again.
    // Consulted before the stat increments so a parked op is counted
    // exactly once, when the engine replays it through this path.
    if (_destage && _destage->interceptWrite(addr, data, kind, cb))
        return;

    // Counted here -- on the NVM path -- so data_writes / log_writes
    // mean "writes reaching NVM" in every mode: absorbed DataWbs are
    // counted by dram_wr_absorbed instead, while DRAM victim
    // writebacks and durability cleanses (which enter through this
    // function) are real NVM writes and show up here.
    if (isLogTraffic(kind))
        _statLogWrites.inc();
    else
        _statWrites.inc();

    const std::uint32_t ch = channelFor(isLogTraffic(kind));
    auto &wq = _chState[ch].writeQ;

    // Write combining in the controller queue: a newer write to the same
    // line replaces the queued data; durability callbacks accumulate.
    for (Request *queued = wq.head; queued; queued = queued->next) {
        if (queued->addr == addr && queued->wkind == kind) {
            queued->data = data;
            queued->acceptSeq = ++_acceptSeq;
            // The read-forwarding snapshot must track the newest
            // accepted value too, or a read (and, in hybrid mode, the
            // DRAM demand fill it feeds) observes the pre-combine
            // bytes. The count stays put: still one queued request.
            auto it = _inflightWrites.find(addr);
            if (it != _inflightWrites.end())
                it->second.data = data;
            if (cb)
                addWcb(queued, std::move(cb));
            return;
        }
    }

    Request *req = acquireReq();
    req->isWrite = true;
    req->addr = addr;
    req->data = data;
    req->wkind = kind;
    if (cb)
        req->wcb = std::move(cb);
    req->enqueueTick = _eq.now();
    req->acceptSeq = ++_acceptSeq;
    wq.push_back(req);
    ++_pendingWrites;
    PendingWrite &pw = _inflightWrites[addr];
    ++pw.count;
    pw.data = data;  // acceptance order: this is the newest value
    scheduleKick(ch, _eq.now() + _cfg.mcFrontendLatency);
}

void
MemoryController::whenLineDurable(Addr addr, WriteCallback cb)
{
    addr = lineAlign(addr);
    if (_dram && _dram->isDirty(addr)) {
        // Durability cleanse: the newest copy of the line lives only
        // in volatile DRAM (an absorbed writeback). Push it to NVM --
        // through the gated write path, like any data write -- and
        // ack when *that* write persists. Without this, a commit
        // whose dirty line was evicted L1->L2->DRAM before the flush
        // would be reported durable while its bytes were one power
        // failure away from vanishing.
        _statDramCleanses.inc();
        const Line data = *_dram->peek(addr);
        _dram->markClean(addr);
        writeNvm(addr, data, WriteKind::Flush, std::move(cb));
        return;
    }
    auto it = _inflightWrites.find(addr);
    if (it == _inflightWrites.end() || it->second.count == 0) {
        cb();
        return;
    }
    _durWaiters[addr].push_back(std::move(cb));
}

void
MemoryController::scheduleKick(std::uint32_t ch, Tick when)
{
    TickEvent &ev = *_chState[ch].kickEvent;
    if (ev.scheduled())
        return;
    _eq.schedule(ev, std::max(when, _eq.now()));
}

void
MemoryController::kick(std::uint32_t ch)
{
    auto &st = _chState[ch];
    auto &chan = _channels[ch];

    while (!st.readQ.empty() || !st.writeQ.empty()) {
        if (chan.freeAt() > _eq.now()) {
            scheduleKick(ch, chan.freeAt());
            return;
        }

        // Read-priority arbitration with a write-drain high-water mark.
        const bool drain_writes =
            st.writeQ.count >= (3 * std::size_t(_cfg.mcWriteQueue)) / 4;
        const bool pick_read =
            !st.readQ.empty() && (!drain_writes || st.writeQ.empty());

        if (pick_read) {
            issueRead(ch, st.readQ.pop_front());
        } else {
            Request *req = st.writeQ.pop_front();

            if (_gate && isGated(req->wkind)) {
                // Section III-C: consult the log manager when a data
                // write is scheduled out of the controller. A locked
                // line waits for its record header to persist; the
                // pooled node itself parks in the unlock continuation.
                const std::uint64_t epoch = _epoch;
                const bool free = _gate->tryAcquire(
                    req->addr, [this, ch, req, epoch] {
                        if (epoch != _epoch) {
                            releaseReq(req);
                            return;
                        }
                        _chState[ch].writeQ.push_front(req);
                        scheduleKick(ch, _eq.now());
                    });
                if (!free) {
                    _statGateBlocks.inc();
                    continue;
                }
            }
            issueWrite(ch, req);
        }
    }
}

void
MemoryController::issueRead(std::uint32_t ch, Request *req)
{
    // Observe outstanding writes: forward the newest accepted data
    // for the line while *any* write of it is still pending -- queued
    // or already issued to the device but not yet persisted
    // (read-after-write correctness; the in-flight device window is
    // ~360 cycles, easily reachable by a demand read chasing a
    // writeback).
    const auto fwd = _inflightWrites.find(req->addr);
    Line data = fwd != _inflightWrites.end() ? fwd->second.data
                                             : _nvm.readLine(req->addr);

    // Media-error model: a seeded fraction of device read attempts
    // fail and are retried with bounded backoff; running out of
    // retries is an uncorrectable error surfaced as a structured
    // fault record (the stored bytes are still delivered -- detection
    // is the model, not silent corruption). Rate 0 (default) makes
    // this exactly the old scheduleRead() timing.
    const NvmChannel::ReadGrant grant =
        _channels[ch].scheduleReadFaulty(req->addr);
    if (grant.retries != 0)
        _statMediaRetries.inc(grant.retries);
    if (grant.hardFail) {
        _statMediaFail.inc();
        _mediaFaults.push_back(MediaFaultRecord{
            _id, req->addr, _eq.now(), _cfg.mediaRetryLimit + 1,
            req->rkind});
    }
    const Tick done = grant.ready;
    const std::uint64_t epoch = _epoch;
    ReadCallback cb = std::move(req->rcb);
    releaseReq(req);
    _eq.post(done, [this, epoch, cb = std::move(cb),
                    data = std::move(data)]() mutable {
        if (epoch != _epoch)
            return;
        --_pendingReads;
        cb(data);
    });
}

void
MemoryController::issueWrite(std::uint32_t ch, Request *req)
{
    // The record-header address match costs one cycle on the data-write
    // path (Section V); it is folded into the device write here.
    const Tick done = _channels[ch].scheduleWrite() +
                      (isGated(req->wkind) ? _cfg.mcAddrMatchLatency : 0);
    // Under the torn-write model the controller remembers what is in
    // flight at the device: powerFail consumes this list to commit a
    // word-aligned prefix of each write (the posted completions alone
    // cannot tell us -- the epoch bump cancels them first).
    if (_cfg.tornWrites)
        _deviceWrites.push_back(req);
    const std::uint64_t epoch = _epoch;
    _eq.post(done, [this, epoch, req] {
        if (epoch != _epoch) {
            releaseReq(req);
            return;
        }
        if (_cfg.tornWrites) {
            const auto dw = std::find(_deviceWrites.begin(),
                                      _deviceWrites.end(), req);
            if (dw != _deviceWrites.end())
                _deviceWrites.erase(dw);
        }
        // Same-line commits land in the durable image in *acceptance*
        // order, not device-completion order: a write-gate park can
        // replay a blocked writeback behind a later-accepted commit
        // flush of the same line (stacked push_fronts fire newest
        // first), and letting the stale bytes clobber the flushed
        // ones tears committed data after truncation discarded its
        // undo record. The stale write keeps its device-slot timing
        // and acks; only its image update is suppressed.
        auto it = _inflightWrites.find(req->addr);
        const bool stale = it != _inflightWrites.end() &&
                           req->acceptSeq < it->second.committedSeq;
        if (!stale) {
            _nvm.writeLine(req->addr, req->data);
            if (it != _inflightWrites.end())
                it->second.committedSeq = req->acceptSeq;
        }
        --_pendingWrites;
        if (it != _inflightWrites.end() && --it->second.count == 0) {
            _inflightWrites.erase(it);
            auto wit = _durWaiters.find(req->addr);
            if (wit != _durWaiters.end()) {
                auto waiters = std::move(wit->second);
                _durWaiters.erase(wit);
                for (auto &w : waiters)
                    w();
            }
        }
        // Detach the acks and release the node before firing them, so
        // an ack may immediately enqueue new controller work.
        WriteCallback first = std::move(req->wcb);
        WcbNode *chain = req->extra;
        req->extra = nullptr;
        releaseReq(req);
        if (first)
            first();
        while (chain) {
            WcbNode *n = chain;
            chain = n->next;
            WriteCallback cb = std::move(n->cb);
            n->next = nullptr;
            n->cb = nullptr;
            _wcbPool.release(n);
            if (cb)
                cb();
        }
    });
}

void
MemoryController::powerFail()
{
    // Queued and in-flight (not yet completed at the device) work is
    // lost; epoch bump cancels all scheduled completions (which then
    // just return their pooled nodes).
    ++_epoch;

    // Torn writes: each write in flight at the device commits a
    // seeded word-aligned prefix of its data (real NVM guarantees
    // 8-byte atomicity, nothing more), instead of vanishing whole.
    // Tears land in acceptance order and respect the same-line
    // staleness rule as completed writes (a parked writeback replayed
    // behind a newer commit of its line must not resurface, not even
    // partially). Queued-but-unissued writes never reached the device
    // and are dropped atomically as before. The tear boundary hashes
    // only shard-invariant keys, so the post-crash image is identical
    // across reruns and shard counts.
    if (_cfg.tornWrites && !_deviceWrites.empty()) {
        std::sort(_deviceWrites.begin(), _deviceWrites.end(),
                  [](const Request *a, const Request *b) {
                      return a->acceptSeq < b->acceptSeq;
                  });
        for (Request *req : _deviceWrites) {
            auto it = _inflightWrites.find(req->addr);
            const bool stale = it != _inflightWrites.end() &&
                               req->acceptSeq < it->second.committedSeq;
            if (stale)
                continue;
            const std::uint32_t words = tornWordCount(
                _cfg.faultSeed, _id, req->addr, req->acceptSeq);
            _nvm.writeLineWords(req->addr, req->data, words);
            if (it != _inflightWrites.end())
                it->second.committedSeq = req->acceptSeq;
        }
        // The nodes stay alive: their cancelled completions (epoch
        // mismatch) release them back to the pool.
        _deviceWrites.clear();
    }

    for (auto &st : _chState) {
        while (!st.readQ.empty())
            releaseReq(st.readQ.pop_front());
        while (!st.writeQ.empty())
            releaseReq(st.writeQ.pop_front());
        _eq.deschedule(*st.kickEvent);
    }
    _inflightWrites.clear();
    _durWaiters.clear();
    _pendingWrites = 0;
    _pendingReads = 0;
    if (_dram) {
        // The DRAM tier is volatile: every cached line -- dirty
        // absorbed writebacks included -- is lost. Only bytes the NVM
        // device had completed survive into the recovery image.
        _dram->invalidateAll();
        _dramDev->clear();
        while (_dramActive) {
            DramOp *op = _dramActive;
            _dramActive = op->activeNext;
            op->activeNext = nullptr;
            op->rcb = nullptr;
            op->wcb = nullptr;
            _dramOpPool.release(op);
        }
    }
}

std::uint64_t
MemoryController::channelBusyCycles() const
{
    std::uint64_t total = 0;
    for (const auto &c : _channels)
        total += c.busyCycles();
    return total;
}

} // namespace atomsim
