/**
 * @file
 * Mesh-facing port of a memory controller.
 *
 * The port is the MeshSink for everything addressed to an MC's corner
 * node: L2 fill reads (GetS/GetX), durable data writes (MemWrite) and
 * flush-ordering waits (FlushReq). It owns the source-logging decision
 * for read-exclusive fills (Section III-D) -- the controller has just
 * read the pre-transaction value, so the log entry is created here and
 * the fill returns with its log bit pre-set (DataLogged).
 */

#ifndef ATOMSIM_MEM_MC_PORT_HH
#define ATOMSIM_MEM_MC_PORT_HH

#include <cstdint>
#include <vector>

#include "mem/memory_controller.hh"
#include "mem/packet.hh"
#include "net/mesh.hh"
#include "sim/types.hh"

namespace atomsim
{

class SourceLogger;

/** One memory controller's attachment to the mesh. */
class McPort : public MeshSink
{
  public:
    McPort(McId mc, Mesh &mesh, MemoryController &ctrl)
        : _mc(mc), _mesh(mesh), _ctrl(ctrl)
    {
    }

    /** Wire the L2 tiles (fill responses; indexed by tile id). */
    void setTileSinks(std::vector<MeshSink *> tiles)
    {
        _tiles = std::move(tiles);
    }

    /** Install the ATOM-OPT source logger (nullptr otherwise). */
    void setSourceLogger(SourceLogger *logger) { _srcLog = logger; }

    void meshDeliver(Packet &pkt) override;

  private:
    McId _mc;
    Mesh &_mesh;
    MemoryController &_ctrl;
    SourceLogger *_srcLog = nullptr;
    std::vector<MeshSink *> _tiles;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_MC_PORT_HH
