#include "mem/nvm_channel.hh"

#include <algorithm>

namespace atomsim
{

NvmChannel::NvmChannel(EventQueue &eq, const SystemConfig &cfg)
    : _eq(eq),
      _transferCycles(cfg.lineTransferCycles()),
      _readLatency(cfg.nvmReadLatency),
      _writeLatency(cfg.nvmWriteLatency)
{
}

Tick
NvmChannel::grant()
{
    const Tick start = std::max(_eq.now(), _busyUntil);
    _busyUntil = start + _transferCycles;
    _busyCycles += _transferCycles;
    return _busyUntil;
}

Tick
NvmChannel::scheduleRead()
{
    ++_reads;
    return grant() + _readLatency;
}

Tick
NvmChannel::scheduleWrite()
{
    ++_writes;
    return grant() + _writeLatency;
}

} // namespace atomsim
