#include "mem/nvm_channel.hh"

#include <algorithm>

#include "sim/fault.hh"

namespace atomsim
{

NvmChannel::NvmChannel(EventQueue &eq, const SystemConfig &cfg,
                       std::uint64_t stream)
    : _eq(eq),
      _transferCycles(cfg.lineTransferCycles()),
      _readLatency(cfg.nvmReadLatency),
      _writeLatency(cfg.nvmWriteLatency),
      _errorPer64k(cfg.mediaErrorPer64k),
      _retryLimit(cfg.mediaRetryLimit),
      _retryBackoff(cfg.mediaRetryBackoff),
      _faultSeed(cfg.faultSeed),
      _stream(stream)
{
}

Tick
NvmChannel::grant()
{
    const Tick start = std::max(_eq.now(), _busyUntil);
    _busyUntil = start + _transferCycles;
    _busyCycles += _transferCycles;
    return _busyUntil;
}

Tick
NvmChannel::scheduleRead()
{
    ++_reads;
    return grant() + _readLatency;
}

NvmChannel::ReadGrant
NvmChannel::scheduleReadFaulty(Addr addr)
{
    ReadGrant g;
    const std::uint64_t idx = ++_reads;
    g.ready = grant() + _readLatency;
    if (_errorPer64k == 0)
        return g;

    // Attempt 0 is the initial device read; each failed attempt is
    // retried (re-occupying the channel, plus backoff) until one
    // succeeds or the bounded retries run out. The per-attempt
    // verdict hashes only shard-invariant keys.
    for (std::uint32_t attempt = 0;; ++attempt) {
        const bool fails =
            faultMix(_faultSeed, _stream, addr, (idx << 8) | attempt) %
                65536 <
            _errorPer64k;
        if (!fails)
            break;
        if (attempt == _retryLimit) {
            g.hardFail = true;
            break;
        }
        ++g.retries;
        g.ready = grant() + _readLatency + _retryBackoff;
    }
    return g;
}

Tick
NvmChannel::scheduleWrite()
{
    ++_writes;
    return grant() + _writeLatency;
}

} // namespace atomsim
