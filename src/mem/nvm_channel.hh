/**
 * @file
 * Timing model of one NVM memory channel.
 *
 * The channel serializes 64-byte transfers at the configured peak
 * bandwidth (5.3 GB/s -> ~25 core cycles per line at 2 GHz); device
 * access latency (240-cycle reads, 360-cycle writes, i.e. 10x DRAM) is
 * pipelined across banks and therefore overlaps between requests. Peak
 * sustainable bandwidth is thus bandwidth-limited, matching Table I.
 */

#ifndef ATOMSIM_MEM_NVM_CHANNEL_HH
#define ATOMSIM_MEM_NVM_CHANNEL_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace atomsim
{

/** One memory channel: a bandwidth-serialized pipe into NVM devices. */
class NvmChannel
{
  public:
    /**
     * Outcome of one read reservation under the media-error model:
     * the tick the data is available, how many seeded error retries
     * the device absorbed first, and whether the bounded retries ran
     * out (an uncorrectable error the controller must surface).
     */
    struct ReadGrant
    {
        Tick ready = 0;
        std::uint32_t retries = 0;
        bool hardFail = false;
    };

    /**
     * @param stream distinguishes this channel's fault-injection
     *               stream from every other channel's (the owning
     *               controller passes mc * channelsPerMc + channel).
     */
    NvmChannel(EventQueue &eq, const SystemConfig &cfg,
               std::uint64_t stream = 0);

    /**
     * Reserve the channel for one 64-byte read.
     * @return absolute tick at which the data is available.
     */
    Tick scheduleRead();

    /**
     * Reserve the channel for one 64-byte read of @p addr under the
     * media-error model (SystemConfig::mediaErrorPer64k). Whether an
     * attempt fails is a pure function of (faultSeed, stream, addr,
     * per-channel read index, attempt) -- deterministic across
     * reruns and shard counts. Each retry re-occupies the channel
     * and pays mediaRetryBackoff on top of the device latency. With
     * the rate at 0 (the default) this is exactly scheduleRead().
     */
    ReadGrant scheduleReadFaulty(Addr addr);

    /**
     * Reserve the channel for one 64-byte write.
     * @return absolute tick at which the write is durable in NVM.
     */
    Tick scheduleWrite();

    /** Tick at which the channel next becomes free. */
    Tick freeAt() const { return _busyUntil; }

    /** Busy cycles accumulated (for bandwidth-utilization stats). */
    std::uint64_t busyCycles() const { return _busyCycles; }

    std::uint64_t reads() const { return _reads; }
    std::uint64_t writes() const { return _writes; }

  private:
    Tick grant();

    EventQueue &_eq;
    Cycles _transferCycles;
    Cycles _readLatency;
    Cycles _writeLatency;
    std::uint32_t _errorPer64k;
    std::uint32_t _retryLimit;
    Cycles _retryBackoff;
    std::uint64_t _faultSeed;
    std::uint64_t _stream;
    Tick _busyUntil = 0;
    std::uint64_t _busyCycles = 0;
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_NVM_CHANNEL_HH
