/**
 * @file
 * Timing model of one NVM memory channel.
 *
 * The channel serializes 64-byte transfers at the configured peak
 * bandwidth (5.3 GB/s -> ~25 core cycles per line at 2 GHz); device
 * access latency (240-cycle reads, 360-cycle writes, i.e. 10x DRAM) is
 * pipelined across banks and therefore overlaps between requests. Peak
 * sustainable bandwidth is thus bandwidth-limited, matching Table I.
 */

#ifndef ATOMSIM_MEM_NVM_CHANNEL_HH
#define ATOMSIM_MEM_NVM_CHANNEL_HH

#include <cstdint>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace atomsim
{

/** One memory channel: a bandwidth-serialized pipe into NVM devices. */
class NvmChannel
{
  public:
    NvmChannel(EventQueue &eq, const SystemConfig &cfg);

    /**
     * Reserve the channel for one 64-byte read.
     * @return absolute tick at which the data is available.
     */
    Tick scheduleRead();

    /**
     * Reserve the channel for one 64-byte write.
     * @return absolute tick at which the write is durable in NVM.
     */
    Tick scheduleWrite();

    /** Tick at which the channel next becomes free. */
    Tick freeAt() const { return _busyUntil; }

    /** Busy cycles accumulated (for bandwidth-utilization stats). */
    std::uint64_t busyCycles() const { return _busyCycles; }

    std::uint64_t reads() const { return _reads; }
    std::uint64_t writes() const { return _writes; }

  private:
    Tick grant();

    EventQueue &_eq;
    Cycles _transferCycles;
    Cycles _readLatency;
    Cycles _writeLatency;
    Tick _busyUntil = 0;
    std::uint64_t _busyCycles = 0;
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_NVM_CHANNEL_HH
