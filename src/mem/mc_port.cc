#include "mem/mc_port.hh"

#include "cache/l2_cache.hh"
#include "sim/logging.hh"

namespace atomsim
{

void
McPort::meshDeliver(Packet &pkt)
{
    switch (pkt.type) {
      case MsgType::GetS:
      case MsgType::GetX: {
        // L2 fill read. The response goes back to the requesting tile
        // as a typed Data/DataExcl/DataLogged packet.
        const bool exclusive = pkt.type == MsgType::GetX;
        const bool in_atomic = pkt.flag;
        const CoreId core = pkt.core;
        const Addr addr = pkt.addr;
        const std::uint32_t tile = pkt.arg;
        _ctrl.readLine(
            addr, ReadKind::Demand,
            [this, core, addr, tile, exclusive,
             in_atomic](const Line &data) {
                bool logged = false;
                // Source-logging (Section III-D): the controller has
                // just read the pre-transaction value of the line; log
                // it here and return the data with the log bit set.
                if (exclusive && in_atomic && _srcLog)
                    logged = _srcLog->sourceLogFill(core, addr, data);
                const MsgType resp =
                    logged ? MsgType::DataLogged
                           : (exclusive ? MsgType::DataExcl
                                        : MsgType::Data);
                Packet &p = _mesh.make(resp);
                p.receiver = _tiles[tile];
                p.core = core;
                p.addr = addr;
                p.data = data;
                p.logged = logged;
                p.flag = exclusive;
                _mesh.send(_mesh.mcNode(_mc), _mesh.tileNode(tile), p);
            });
        return;
      }
      case MsgType::MemWrite:
        // Durable data write; the packet's rider fires when durable.
        _ctrl.writeLine(pkt.addr, pkt.data, WriteKind(pkt.arg),
                        std::move(pkt.cb));
        return;
      case MsgType::FlushReq:
        // Flush ordering: resume the rider once any queued write to
        // the line has persisted.
        _ctrl.whenLineDurable(pkt.addr, std::move(pkt.cb));
        return;
      default:
        panic("MC port %u: unexpected mesh message %s", _mc,
              msgName(pkt.type));
    }
}

} // namespace atomsim
