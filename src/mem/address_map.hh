/**
 * @file
 * Physical address space layout and interleaving.
 *
 * The simulated physical address space is split into a data region and
 * an OS-reserved log region (Section IV-E of the paper). Pages are
 * interleaved across memory controllers at 4 KB granularity, so a log
 * *bucket* -- 8 records x 512 B = 4 KB -- is exactly one page that maps
 * wholly to one controller. L2 home tiles are line-interleaved.
 *
 * Page-granularity MC interleaving (vs gem5's line interleaving) keeps
 * log/data co-location well defined: ATOM sends a log entry to the MC
 * owning the *data* page, and allocates the entry in a log bucket that
 * lives behind that same MC.
 *
 * The map also owns the hybrid-memory *app-direct window*: in
 * HybridMode::AppDirect, one region (log+ADR or data, per
 * SystemConfig::appDirectRegion) bypasses the per-MC DRAM cache.
 */

#ifndef ATOMSIM_MEM_ADDRESS_MAP_HH
#define ATOMSIM_MEM_ADDRESS_MAP_HH

#include <cstdint>

#include "mem/phys_mem.hh"
#include "sim/config.hh"
#include "sim/types.hh"

namespace atomsim
{

/** Address-space layout + interleave functions. All methods are pure. */
class AddressMap
{
  public:
    /**
     * @param cfg      system configuration (MC count, bucket counts)
     * @param data_bytes size of the data region (log region follows it)
     */
    AddressMap(const SystemConfig &cfg, Addr data_bytes);

    /** Memory controller owning the page of @p addr. */
    McId memCtrl(Addr addr) const;

    /** L2 home tile of the line of @p addr. */
    std::uint32_t homeTile(Addr addr) const;

    /** First byte of the log region. */
    Addr logBase() const { return _logBase; }

    /** One past the last byte of the (initially reserved) log region. */
    Addr logEnd() const { return _logEnd; }

    /** True if @p addr falls in the reserved log region. */
    bool
    isLogAddr(Addr addr) const
    {
        return addr >= _logBase && addr < _logEnd;
    }

    /**
     * Base address of a log bucket.
     *
     * Bucket @p bucket of controller @p mc is the (bucket*numMc+mc)-th
     * page of the log region, which interleaving maps to @p mc.
     */
    Addr bucketBase(McId mc, std::uint32_t bucket) const;

    /** Base address of a 512-byte record inside a bucket. */
    Addr recordBase(McId mc, std::uint32_t bucket,
                    std::uint32_t record) const;

    /**
     * Base of the one-page ADR region of controller @p mc, right after
     * the log region: the critical LogM registers are flushed here on
     * power failure (Section IV-D).
     */
    Addr adrBase(McId mc) const { return _logEnd + Addr(mc) * kPageBytes; }

    /** One past the last reserved byte (data + log + ADR regions,
     * plus the SSD forwarding-map region when the flash tier is on). */
    Addr
    reservedEnd() const
    {
        return ssdMapBase() +
               Addr(_ssdMapPagesPerMc) * _numMc * kPageBytes;
    }

    // --- Flash tier: NVM-resident forwarding map ---------------------

    /** 16-byte forwarding entries per map page. */
    static constexpr std::uint32_t kSsdEntriesPerMapPage =
        kPageBytes / 16;

    /**
     * First byte of the forwarding-map region, right after the ADR
     * pages. Like log buckets, map page @p j of controller @p mc is
     * the (j*numMc+mc)-th page of the region, so page interleaving
     * maps every controller's slice to itself and sharded MC domains
     * never touch each other's DataImage stripes. The region is empty
     * (zero pages) unless SystemConfig::ssdTier is set, so the default
     * layout — and every pinned golden — is unchanged.
     */
    Addr
    ssdMapBase() const
    {
        return _logEnd + Addr(_numMc) * kPageBytes;
    }

    /** Forwarding-map pages per controller (0 with the tier off). */
    std::uint32_t ssdMapPagesPerMc() const { return _ssdMapPagesPerMc; }

    /** Forwarding-map entries (= mappable flash pages) per controller. */
    std::uint32_t
    ssdMapEntriesPerMc() const
    {
        return _ssdMapPagesPerMc * kSsdEntriesPerMapPage;
    }

    /** Base address of forwarding-map page @p j of controller @p mc. */
    Addr ssdMapPage(McId mc, std::uint32_t j) const;

    // --- Hybrid memory: app-direct partitioning ----------------------

    /**
     * First byte of the app-direct window -- the region that bypasses
     * the per-MC DRAM cache and talks straight to NVM. Empty (base ==
     * end == 0) unless hybridMode == AppDirect, where
     * SystemConfig::appDirectRegion picks either the log + ADR region
     * (log placement: direct-to-NVM, data DRAM-cached) or the data
     * region (the inverse design point).
     */
    Addr appDirectBase() const { return _appDirectBase; }

    /** One past the last byte of the app-direct window. The
     * controllers test addresses against [base, end) through the
     * single shared predicate (sim/types.hh::inAddrWindow); whether a
     * DRAM tier exists at all is the controller's _dram null-check,
     * so there is exactly one source of truth for each half of the
     * decision. */
    Addr appDirectEnd() const { return _appDirectEnd; }

    /** Bytes in one log record (8 lines). */
    static constexpr Addr kRecordBytes = 8 * kLineBytes;

    std::uint32_t numMemCtrls() const { return _numMc; }
    std::uint32_t bucketsPerMc() const { return _bucketsPerMc; }
    std::uint32_t recordsPerBucket() const { return _recordsPerBucket; }

  private:
    std::uint32_t _numMc;
    std::uint32_t _l2Tiles;
    std::uint32_t _bucketsPerMc;
    std::uint32_t _recordsPerBucket;
    std::uint32_t _ssdMapPagesPerMc = 0;
    Addr _logBase;
    Addr _logEnd;
    Addr _appDirectBase = 0;
    Addr _appDirectEnd = 0;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_ADDRESS_MAP_HH
