#include "mem/phys_mem.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace atomsim
{

const DataImage::Page *
DataImage::findPage(Addr page_num) const
{
    const auto &stripe = _stripes[page_num % kStripes];
    auto it = stripe.find(page_num);
    return it == stripe.end() ? nullptr : it->second.get();
}

DataImage::Page &
DataImage::touchPage(Addr page_num)
{
    auto &slot = _stripes[page_num % kStripes][page_num];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

void
DataImage::read(Addr addr, std::size_t size, void *out) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (size > 0) {
        const Addr page_num = addr >> kPageShift;
        const std::size_t off = addr & (kPageBytes - 1);
        const std::size_t chunk = std::min(size, kPageBytes - off);
        if (const Page *p = findPage(page_num))
            std::memcpy(dst, p->data() + off, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        addr += chunk;
        size -= chunk;
    }
}

void
DataImage::write(Addr addr, std::size_t size, const void *in)
{
    auto *src = static_cast<const std::uint8_t *>(in);
    while (size > 0) {
        const Addr page_num = addr >> kPageShift;
        const std::size_t off = addr & (kPageBytes - 1);
        const std::size_t chunk = std::min(size, kPageBytes - off);
        std::memcpy(touchPage(page_num).data() + off, src, chunk);
        src += chunk;
        addr += chunk;
        size -= chunk;
    }
}

Line
DataImage::readLine(Addr addr) const
{
    Line line;
    read(lineAlign(addr), kLineBytes, line.data());
    return line;
}

void
DataImage::writeLine(Addr addr, const Line &line)
{
    write(lineAlign(addr), kLineBytes, line.data());
}

void
DataImage::writeLineWords(Addr addr, const Line &line, std::uint32_t words)
{
    const std::uint32_t capped =
        std::min<std::uint32_t>(words, kLineBytes / 8);
    if (capped == 0)
        return;
    write(lineAlign(addr), std::size_t(capped) * 8, line.data());
}

DataImage
DataImage::clone() const
{
    DataImage copy;
    for (std::uint32_t s = 0; s < kStripes; ++s) {
        for (const auto &[num, page] : _stripes[s]) {
            auto dup = std::make_unique<Page>(*page);
            copy._stripes[s].emplace(num, std::move(dup));
        }
    }
    return copy;
}

} // namespace atomsim
