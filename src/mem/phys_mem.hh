/**
 * @file
 * Sparse byte-addressable memory images.
 *
 * atomsim keeps two images of memory:
 *
 *  - the *architectural* image, updated eagerly when workload
 *    transactions execute functionally; and
 *  - the *durable* (NVM) image, updated only by timing-model writes
 *    (data writebacks/flushes and log writes).
 *
 * Both are instances of DataImage. Crash/recovery tests diff them.
 */

#ifndef ATOMSIM_MEM_PHYS_MEM_HH
#define ATOMSIM_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "sim/types.hh"

namespace atomsim
{

/** One cache line of data. */
using Line = std::array<std::uint8_t, kLineBytes>;

/** Page size used for sparse allocation and MC interleaving. */
constexpr std::uint32_t kPageBytes = 4096;
constexpr std::uint32_t kPageShift = 12;

/**
 * A sparse, zero-initialized byte-addressable memory image.
 *
 * Pages materialize on first write; reads of untouched memory return
 * zeroes. The page index is *striped* by page number: because memory
 * controllers interleave at page granularity (mem/address_map.hh maps
 * page p -- data, log bucket and ADR alike -- to MC p % numMemCtrls),
 * controller m only ever touches stripes congruent to m, so in sharded
 * runs concurrent MC domains never share an index structure and need
 * no locks. Within one stripe the image is single-writer.
 */
class DataImage
{
  public:
    DataImage() = default;

    /** Read @p size bytes at @p addr into @p out. */
    void read(Addr addr, std::size_t size, void *out) const;

    /** Write @p size bytes at @p addr from @p in. */
    void write(Addr addr, std::size_t size, const void *in);

    /** Read one 64-byte line (addr need not be aligned; it is aligned). */
    Line readLine(Addr addr) const;

    /** Write one 64-byte line at the line containing @p addr. */
    void writeLine(Addr addr, const Line &line);

    /**
     * Word-granular commit: write only the first @p words 8-byte
     * words of @p line, leaving the tail of the stored line as it
     * was. This is the torn-write primitive -- NVM guarantees only
     * 8-byte atomicity, so a line write interrupted by power failure
     * lands as a word-aligned prefix. @p words is clamped to the 8
     * words of a line; 0 is a no-op, 8 equals writeLine.
     */
    void writeLineWords(Addr addr, const Line &line, std::uint32_t words);

    /** Convenience scalar accessors. */
    std::uint64_t
    load64(Addr addr) const
    {
        std::uint64_t v;
        read(addr, sizeof(v), &v);
        return v;
    }

    void
    store64(Addr addr, std::uint64_t v)
    {
        write(addr, sizeof(v), &v);
    }

    std::uint32_t
    load32(Addr addr) const
    {
        std::uint32_t v;
        read(addr, sizeof(v), &v);
        return v;
    }

    void
    store32(Addr addr, std::uint32_t v)
    {
        write(addr, sizeof(v), &v);
    }

    /** Number of materialized pages (for tests / footprint stats). */
    std::size_t
    pagesAllocated() const
    {
        std::size_t n = 0;
        for (const auto &s : _stripes)
            n += s.size();
        return n;
    }

    /** Drop all contents. */
    void
    clear()
    {
        for (auto &s : _stripes)
            s.clear();
    }

    /** Deep copy (used by crash tests to snapshot the NVM image). */
    DataImage clone() const;

    /** Stripes of the page index; a multiple of every supported MC
     * count, so each controller's residue class is private to it. */
    static constexpr std::uint32_t kStripes = 32;

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    const Page *findPage(Addr page_num) const;
    Page &touchPage(Addr page_num);

    std::array<std::unordered_map<Addr, std::unique_ptr<Page>>,
               kStripes> _stripes;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_PHYS_MEM_HH
