/**
 * @file
 * Sparse byte-addressable memory images.
 *
 * atomsim keeps two images of memory:
 *
 *  - the *architectural* image, updated eagerly when workload
 *    transactions execute functionally; and
 *  - the *durable* (NVM) image, updated only by timing-model writes
 *    (data writebacks/flushes and log writes).
 *
 * Both are instances of DataImage. Crash/recovery tests diff them.
 */

#ifndef ATOMSIM_MEM_PHYS_MEM_HH
#define ATOMSIM_MEM_PHYS_MEM_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "sim/types.hh"

namespace atomsim
{

/** One cache line of data. */
using Line = std::array<std::uint8_t, kLineBytes>;

/** Page size used for sparse allocation and MC interleaving. */
constexpr std::uint32_t kPageBytes = 4096;
constexpr std::uint32_t kPageShift = 12;

/**
 * A sparse, zero-initialized byte-addressable memory image.
 *
 * Pages materialize on first write; reads of untouched memory return
 * zeroes. Not thread-safe (the simulator is single-threaded).
 */
class DataImage
{
  public:
    DataImage() = default;

    /** Read @p size bytes at @p addr into @p out. */
    void read(Addr addr, std::size_t size, void *out) const;

    /** Write @p size bytes at @p addr from @p in. */
    void write(Addr addr, std::size_t size, const void *in);

    /** Read one 64-byte line (addr need not be aligned; it is aligned). */
    Line readLine(Addr addr) const;

    /** Write one 64-byte line at the line containing @p addr. */
    void writeLine(Addr addr, const Line &line);

    /** Convenience scalar accessors. */
    std::uint64_t
    load64(Addr addr) const
    {
        std::uint64_t v;
        read(addr, sizeof(v), &v);
        return v;
    }

    void
    store64(Addr addr, std::uint64_t v)
    {
        write(addr, sizeof(v), &v);
    }

    std::uint32_t
    load32(Addr addr) const
    {
        std::uint32_t v;
        read(addr, sizeof(v), &v);
        return v;
    }

    void
    store32(Addr addr, std::uint32_t v)
    {
        write(addr, sizeof(v), &v);
    }

    /** Number of materialized pages (for tests / footprint stats). */
    std::size_t pagesAllocated() const { return _pages.size(); }

    /** Drop all contents. */
    void clear() { _pages.clear(); }

    /** Deep copy (used by crash tests to snapshot the NVM image). */
    DataImage clone() const;

  private:
    using Page = std::array<std::uint8_t, kPageBytes>;

    const Page *findPage(Addr page_num) const;
    Page &touchPage(Addr page_num);

    std::unordered_map<Addr, std::unique_ptr<Page>> _pages;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_PHYS_MEM_HH
