/**
 * @file
 * Banked DRAM device timing model for the hybrid memory subsystem.
 *
 * One device per memory controller, sitting in front of the NVM
 * channel when SystemConfig::hybridMode != NvmOnly. The model captures
 * the first-order DRAM effects that distinguish it from the flat NVM
 * channel (mem/nvm_channel.hh):
 *
 *  - per-bank busy reservations: accesses to different banks pipeline,
 *    accesses to the same bank serialize;
 *  - an open row buffer per bank: an access to the currently open row
 *    completes at dramRowHitLatency, any other row pays the
 *    precharge + activate cost (dramRowMissLatency) and opens its row;
 *  - a shared data bus occupied dramTransferCycles() per 64-byte line.
 *
 * Scheduling is FR-FCFS-lite over a pooled intrusive request list: the
 * picker prefers the oldest request that hits an open row in a free
 * bank, then the oldest request whose bank is free. Requests and their
 * continuations are pooled (FreeListPool / InplaceCallback), so the
 * steady-state access path performs no heap allocation -- the same
 * discipline as every other hot path in the tree.
 *
 * The device is entirely private to its owning controller's simulation
 * domain: all events run on the controller's EventQueue, so sharded
 * runs stay byte-identical across shard counts by construction.
 */

#ifndef ATOMSIM_MEM_DRAM_DEVICE_HH
#define ATOMSIM_MEM_DRAM_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/callback.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/pool.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/** One controller's DRAM device array (banks + row buffers + bus). */
class DramDevice
{
  public:
    /** Completion continuation; capacity fits the controller's pooled
     * DRAM-op capture (a this pointer, a node pointer and an epoch). */
    using Callback = InplaceCallback<32>;

    /**
     * @param eq    the owning controller's event queue
     * @param cfg   system configuration (bank/row/latency knobs)
     * @param row_hits / row_misses  stat counters (owned by caller)
     */
    DramDevice(EventQueue &eq, const SystemConfig &cfg,
               Counter &row_hits, Counter &row_misses);

    /**
     * Queue one 64-byte access. @p ready is the earliest tick the
     * request may issue (the controller front-end latency); @p done
     * runs when the access completes at the device.
     */
    void access(Addr addr, bool is_write, Tick ready, Callback done);

    /** Drop every queued access (power failure). Completions already
     * posted to the event queue still fire; callers guard them with
     * their own epoch. Row buffers and reservations reset. */
    void clear();

    /** Queued (not yet issued) accesses. */
    std::size_t queued() const { return _queuedCount; }

    /** Pooled request nodes ever allocated (high-water mark). */
    std::size_t poolAllocated() const { return _pool.allocated(); }

    /** Pooled request nodes currently idle. */
    std::size_t poolFree() const { return _pool.idle(); }

    std::uint64_t reads() const { return _reads; }
    std::uint64_t writes() const { return _writes; }

    /** Busy cycles accumulated on the data bus (utilization stats). */
    std::uint64_t busCycles() const { return _busCycles; }

  private:
    /** One queued access: a pooled intrusive node. */
    struct Req
    {
        Req *next = nullptr;
        Addr addr = 0;
        bool isWrite = false;
        Tick readyAt = 0;
        Callback done;
    };

    struct Bank
    {
        Tick busyUntil = 0;
        Addr openRow = ~Addr(0);  //!< no row open initially
    };

    std::uint32_t bankOf(Addr addr) const;
    Addr rowOf(Addr addr) const;

    /** Issue every ready request a free bank can take; reschedule the
     * pick event for the earliest future readiness otherwise. */
    void pick();

    /** Unlink @p req (with predecessor @p prev) and issue it. */
    void issue(Req *prev, Req *req);

    EventQueue &_eq;
    const SystemConfig &_cfg;
    const Cycles _transferCycles;

    std::vector<Bank> _banks;
    Req *_head = nullptr;  //!< FIFO order = arrival order
    Req *_tail = nullptr;
    std::size_t _queuedCount = 0;
    FreeListPool<Req> _pool;
    std::unique_ptr<TickEvent> _pickEvent;

    Tick _busBusyUntil = 0;
    std::uint64_t _busCycles = 0;
    std::uint64_t _reads = 0;
    std::uint64_t _writes = 0;

    Counter &_statRowHits;
    Counter &_statRowMisses;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_DRAM_DEVICE_HH
