/**
 * @file
 * Set-associative memory-mode DRAM cache in front of one controller's
 * NVM channel (SystemConfig::hybridMode != NvmOnly).
 *
 * Organization: dramCacheMBPerMc of 64-byte lines, dramCacheAssoc
 * ways, true-LRU within a set. Tags and metadata live "in SRAM" -- a
 * flat array in simulator memory probed at zero cost -- so only data
 * movement is charged DRAM timing (mem/dram_device.hh). The data array
 * is allocated once at construction and never grows: the steady-state
 * hit path performs no heap allocation (bench/hybrid_sweep.cc gates
 * this with an operator-new counter).
 *
 * Policy (enforced by the owning MemoryController):
 *
 *  - demand fill on read miss: the NVM read's data installs here, and
 *    a dirty victim is written back to NVM through the ordinary
 *    (gated) write queue;
 *  - DataWb writes are *absorbed*: the L2's dirty evictions land in
 *    DRAM at DRAM latency and only reach NVM on victim eviction or a
 *    durability cleanse. Their completion has never been a durability
 *    promise -- commit-time persistence always travels as Flush;
 *  - every durability-bearing write kind (Flush, log/ADR/REDO
 *    traffic) is write-through: NVM decides the completion, and a
 *    present cached copy is updated and marked clean.
 *
 * The cache is volatile: powerFail() invalidates everything, so dirty
 * absorbed lines are lost and only NVM-resident bytes survive into the
 * recovery image (tests/test_recovery.cc pins this).
 */

#ifndef ATOMSIM_MEM_DRAM_CACHE_HH
#define ATOMSIM_MEM_DRAM_CACHE_HH

#include <cstdint>
#include <vector>

#include "mem/phys_mem.hh"
#include "sim/config.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace atomsim
{

/** One controller's DRAM cache (tags + data; timing lives with the
 * caller's DramDevice). */
class DramCache
{
  public:
    DramCache(const SystemConfig &cfg, StatSet &stats,
              const std::string &stat_group);

    /** A dirty line displaced by fill()/absorb(); must be written back
     * to NVM by the caller. */
    struct Victim
    {
        bool dirty = false;
        Addr addr = 0;
        Line data{};
    };

    /** True if the line of @p addr is present (no LRU update). */
    bool contains(Addr addr) const;

    /** True if the line is present and dirty (newer than NVM). */
    bool isDirty(Addr addr) const;

    /** Cached copy of the line (nullptr if absent; no LRU update). */
    const Line *peek(Addr addr) const;

    /**
     * Read probe: on a hit, touches LRU, copies the line into @p out
     * and returns true. Counts dram_hits / dram_misses.
     */
    bool read(Addr addr, Line &out);

    /**
     * Install @p data after a demand fill from NVM. If the line is
     * already present (an absorbed write landed while the NVM read
     * was in flight) the *cached* copy is newer and is kept. Returns
     * the displaced dirty victim, if any.
     */
    Victim fill(Addr addr, const Line &data);

    /**
     * Absorb a write (DataWb): update or allocate the line, mark it
     * dirty. Returns the displaced dirty victim, if any.
     */
    Victim absorb(Addr addr, const Line &data);

    /**
     * Write-through update: if the line is present, refresh its data
     * and mark it clean (NVM is receiving the same bytes). Never
     * allocates a way.
     */
    void writeThrough(Addr addr, const Line &data);

    /** Mark a present line clean (durability cleanse issued). */
    void markClean(Addr addr);

    /** Power failure: DRAM contents are lost wholesale. */
    void invalidateAll();

    std::uint32_t numSets() const { return _sets; }
    std::uint32_t assoc() const { return _assoc; }

    /** Lines currently valid+dirty (tests / powerFail accounting). */
    std::size_t dirtyLines() const;

  private:
    struct Way
    {
        Addr tag = 0;          //!< line address
        std::uint64_t lru = 0; //!< global use stamp
        bool valid = false;
        bool dirty = false;
    };

    std::uint32_t setOf(Addr line) const;
    Way *find(Addr line);
    const Way *find(Addr line) const;
    Line &dataOf(const Way *way);

    const std::uint32_t _assoc;
    std::uint32_t _sets;
    std::vector<Way> _ways;   //!< _sets * _assoc, set-major
    std::vector<Line> _data;  //!< parallel to _ways
    std::uint64_t _useStamp = 0;

    Counter &_statHits;
    Counter &_statMisses;
    Counter &_statWrAbsorbed;
    Counter &_statWbEvictions;
};

} // namespace atomsim

#endif // ATOMSIM_MEM_DRAM_CACHE_HH
